(* The rebalance command-line tool: generate instances, solve them with
   any algorithm in the library, inspect lower bounds, and run the
   web-server simulation. See README.md for a tour. *)

module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Budget = Rebal_core.Budget
module Verify = Rebal_core.Verify
module Io = Rebal_core.Io
module Lower_bounds = Rebal_core.Lower_bounds
module Dist = Rebal_workloads.Dist
module Gen = Rebal_workloads.Gen
module Rng = Rebal_workloads.Rng
module Metrics = Rebal_obs.Metrics
module Trace = Rebal_obs.Trace
module Expo = Rebal_obs.Expo
module Journal = Rebal_obs.Journal
module Replay = Rebal_online.Replay
module Indexed_heap = Rebal_ds.Indexed_heap
open Cmdliner

(* The one version string: cmdliner's --version, the CHANGELOG and the
   rebal_build_info metric all report it. *)
let version = "1.10.0"

(* ----- shared argument parsing ----- *)

let dist_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "uniform"; lo; hi ] ->
      Ok (Dist.Uniform { lo = int_of_string lo; hi = int_of_string hi })
    | [ "constant"; c ] -> Ok (Dist.Constant (int_of_string c))
    | [ "exp"; mean ] -> Ok (Dist.Exponential { mean = float_of_string mean })
    | [ "zipf"; alpha; scale ] ->
      Ok (Dist.Zipf { ranks = 1000; alpha = float_of_string alpha; scale = int_of_string scale })
    | [ "pareto"; alpha; scale ] ->
      Ok (Dist.Pareto { alpha = float_of_string alpha; scale = int_of_string scale })
    | [ "bimodal"; p ] ->
      Ok
        (Dist.Bimodal
           { small_lo = 1; small_hi = 20; big_lo = 100; big_hi = 300; big_prob = float_of_string p })
    | _ ->
      Error
        (`Msg
          "expected DIST as uniform:LO:HI | constant:C | exp:MEAN | zipf:ALPHA:SCALE | \
           pareto:ALPHA:SCALE | bimodal:PROB")
  in
  let parse s = try parse s with Failure _ -> Error (`Msg "bad number in DIST") in
  Arg.conv (parse, fun ppf d -> Format.pp_print_string ppf (Dist.name d))

let cost_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "unit" ] -> Ok Gen.Unit
    | [ "size"; per ] -> Ok (Gen.Proportional_to_size { per = int_of_string per })
    | [ "inverse"; num ] -> Ok (Gen.Inverse_size { numerator = int_of_string num })
    | [ "random"; lo; hi ] ->
      Ok (Gen.Uniform_random { lo = int_of_string lo; hi = int_of_string hi })
    | _ -> Error (`Msg "expected COST as unit | size:PER | inverse:NUM | random:LO:HI")
  in
  let parse s = try parse s with Failure _ -> Error (`Msg "bad number in COST") in
  Arg.conv (parse, fun ppf c -> Format.pp_print_string ppf (Gen.cost_model_name c))

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let read_instance_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> Io.read_instance ic)

(* ----- gen ----- *)

let gen_cmd =
  let n = Arg.(value & opt int 100 & info [ "n"; "jobs" ] ~docv:"N" ~doc:"Number of jobs.") in
  let m = Arg.(value & opt int 10 & info [ "m"; "procs" ] ~docv:"M" ~doc:"Number of processors.") in
  let dist =
    Arg.(
      value
      & opt dist_conv (Dist.Uniform { lo = 1; hi = 100 })
      & info [ "dist" ] ~docv:"DIST" ~doc:"Job size distribution.")
  in
  let cost =
    Arg.(value & opt cost_conv Gen.Unit & info [ "cost" ] ~docv:"COST" ~doc:"Relocation cost model.")
  in
  let placement =
    Arg.(
      value
      & opt (enum [ ("random", `Random); ("skewed", `Skewed); ("drifted", `Drifted) ]) `Random
      & info [ "placement" ] ~docv:"KIND" ~doc:"Initial placement: random, skewed or drifted.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file (stdout if absent).")
  in
  let run n m dist cost placement out seed =
    let rng = Rng.create seed in
    let dist = Dist.prepare dist in
    let inst =
      match placement with
      | `Random -> Gen.random rng ~n ~m ~dist ~cost ()
      | `Skewed -> Gen.skewed rng ~n ~m ~dist ~skew:1.5 ~cost ()
      | `Drifted -> Gen.drifted rng ~n ~m ~dist ~drift:0.3 ~cost ()
    in
    match out with
    | None -> Io.write_instance stdout inst
    | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Io.write_instance oc inst);
      Printf.printf "wrote %d jobs on %d processors to %s\n" n m path
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a load-rebalancing instance.")
    Term.(const run $ n $ m $ dist $ cost $ placement $ out $ seed_arg)

(* ----- solve ----- *)

type algo =
  | A_greedy
  | A_m_partition
  | A_local_search
  | A_lpt
  | A_budgeted
  | A_ptas
  | A_gap
  | A_exact
  | A_none

let algo_enum =
  [
    ("greedy", A_greedy);
    ("m-partition", A_m_partition);
    ("local-search", A_local_search);
    ("lpt", A_lpt);
    ("budgeted-partition", A_budgeted);
    ("ptas", A_ptas);
    ("gap", A_gap);
    ("exact", A_exact);
    ("none", A_none);
  ]

let solve_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file.") in
  let algo =
    Arg.(value & opt (enum algo_enum) A_m_partition & info [ "algo" ] ~docv:"ALGO" ~doc:"Algorithm.")
  in
  let k = Arg.(value & opt (some int) None & info [ "k"; "moves" ] ~docv:"K" ~doc:"Move budget.") in
  let budget =
    Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"B" ~doc:"Relocation cost budget.")
  in
  let show_assignment =
    Arg.(value & flag & info [ "assignment" ] ~doc:"Print the resulting assignment.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")
  in
  let run file algo k budget show_assignment format =
    match read_instance_file file with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | Ok inst ->
      let budget_t =
        match (k, budget) with
        | Some k, None -> Budget.Moves k
        | None, Some b -> Budget.Cost b
        | None, None -> Budget.Moves (Instance.n inst / 10)
        | Some _, Some _ ->
          Printf.eprintf "error: give either --k or --budget, not both\n";
          exit 1
      in
      let assignment =
        match (algo, budget_t) with
        | A_greedy, Budget.Moves k -> Rebal_algo.Greedy.solve inst ~k
        | A_m_partition, Budget.Moves k -> Rebal_algo.M_partition.solve inst ~k
        | A_local_search, Budget.Moves k -> Rebal_algo.Local_search.solve inst ~k
        | A_lpt, _ -> Rebal_algo.Lpt.solve inst
        | A_budgeted, Budget.Cost b -> fst (Rebal_algo.Budgeted_partition.solve inst ~budget:b)
        | A_budgeted, Budget.Moves k ->
          if Instance.unit_cost inst then fst (Rebal_algo.Budgeted_partition.solve inst ~budget:k)
          else begin
            Printf.eprintf "error: budgeted-partition needs --budget on costed instances\n";
            exit 1
          end
        | A_ptas, b -> Rebal_algo.Ptas.solve inst ~budget:b
        | A_gap, Budget.Cost b -> fst (Rebal_lp.Gap.solve inst ~budget:b)
        | A_gap, Budget.Moves _ ->
          Printf.eprintf "error: gap needs --budget (cost budget)\n";
          exit 1
        | A_exact, b -> begin
          match Rebal_algo.Exact.solve inst ~budget:b with
          | Some a -> a
          | None ->
            Printf.eprintf "error: exact solver hit its node limit\n";
            exit 1
        end
        | A_none, _ -> Assignment.identity inst
        | (A_greedy | A_m_partition | A_local_search), Budget.Cost _ ->
          Printf.eprintf "error: this algorithm takes --k (a move budget)\n";
          exit 1
      in
      (match Verify.check inst assignment ~budget:budget_t with
      | Error msg ->
        Printf.eprintf "internal error: invalid assignment: %s\n" msg;
        exit 1
      | Ok report -> begin
        match format with
        | `Text ->
          Printf.printf "initial makespan:  %d\n" (Instance.initial_makespan inst);
          Printf.printf "final makespan:    %d\n" report.Verify.makespan;
          Printf.printf "moves:             %d\n" report.Verify.moves;
          Printf.printf "relocation cost:   %d\n" report.Verify.relocation_cost;
          Printf.printf "budget:            %s ok=%b\n"
            (Format.asprintf "%a" Budget.pp budget_t)
            report.Verify.budget_ok;
          Printf.printf "lower bound:       %d\n" report.Verify.lower_bound;
          Printf.printf "ratio vs bound:    %.4f\n" report.Verify.ratio
        | `Json ->
          Printf.printf
            "{\"initial_makespan\": %d, \"makespan\": %d, \"moves\": %d, \
             \"relocation_cost\": %d, \"budget\": \"%s\", \"budget_ok\": %b, \
             \"lower_bound\": %d, \"ratio\": %.4f}\n"
            (Instance.initial_makespan inst)
            report.Verify.makespan report.Verify.moves report.Verify.relocation_cost
            (Format.asprintf "%a" Budget.pp budget_t)
            report.Verify.budget_ok report.Verify.lower_bound report.Verify.ratio
      end);
      if show_assignment then Io.write_assignment stdout assignment
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve an instance with a chosen algorithm.")
    Term.(const run $ file $ algo $ k $ budget $ show_assignment $ format)

(* ----- bounds ----- *)

let bounds_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file.") in
  let k = Arg.(value & opt int 0 & info [ "k" ] ~docv:"K" ~doc:"Move budget for the G1 bound.") in
  let run file k =
    match read_instance_file file with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | Ok inst ->
      Printf.printf "jobs:             %d\n" (Instance.n inst);
      Printf.printf "processors:       %d\n" (Instance.m inst);
      Printf.printf "initial makespan: %d\n" (Instance.initial_makespan inst);
      Printf.printf "average load:     %d\n" (Lower_bounds.average inst);
      Printf.printf "max job size:     %d\n" (Lower_bounds.max_size inst);
      Printf.printf "G1 (k=%d):        %d\n" k (Lower_bounds.g1 inst ~k)
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print lower bounds on the optimal makespan.")
    Term.(const run $ file $ k)

(* ----- simulate ----- *)

let simulate_cmd =
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV.")
  in
  let sites = Arg.(value & opt int 200 & info [ "sites" ] ~docv:"N" ~doc:"Number of websites.") in
  let servers = Arg.(value & opt int 10 & info [ "servers" ] ~docv:"M" ~doc:"Number of servers.") in
  let horizon = Arg.(value & opt int 168 & info [ "horizon" ] ~docv:"T" ~doc:"Simulated steps.") in
  let period = Arg.(value & opt int 6 & info [ "period" ] ~docv:"P" ~doc:"Steps between rebalances.") in
  let k = Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Per-round move budget.") in
  let run csv sites servers horizon period k seed =
    let traffic =
      Rebal_sim.Traffic.create (Rng.create seed) ~sites ~horizon ~zipf_alpha:0.5 ~scale:300
        ~diurnal_depth:0.8 ~noise:0.15 ~flash_prob:0.003 ~flash_mult:5 ~flash_len:8 ()
    in
    let table =
      Rebal_harness.Table.create ~title:"web-server simulation"
        ~columns:[ "policy"; "mean imb"; "p95 imb"; "peak"; "moves" ]
    in
    List.iter
      (fun policy ->
        let r = Rebal_sim.Simulation.run traffic { Rebal_sim.Simulation.servers; period; policy } in
        Rebal_harness.Table.add_row table
          [
            Rebal_sim.Policy.name policy;
            Printf.sprintf "%.3f" r.Rebal_sim.Simulation.mean_imbalance;
            Printf.sprintf "%.3f" r.Rebal_sim.Simulation.p95_imbalance;
            string_of_int r.Rebal_sim.Simulation.peak_makespan;
            string_of_int r.Rebal_sim.Simulation.total_moves;
          ])
      [
        Rebal_sim.Policy.No_rebalance;
        Rebal_sim.Policy.Greedy k;
        Rebal_sim.Policy.M_partition k;
        Rebal_sim.Policy.Local_search k;
        Rebal_sim.Policy.Full_lpt;
      ];
    Rebal_harness.Table.print table;
    Option.iter (fun path -> Rebal_harness.Table.save_csv table ~path) csv
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the web-server migration simulation.")
    Term.(const run $ csv $ sites $ servers $ horizon $ period $ k $ seed_arg)


(* ----- chaos ----- *)

let chaos_cmd =
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV.")
  in
  let sites = Arg.(value & opt int 200 & info [ "sites" ] ~docv:"N" ~doc:"Number of websites.") in
  let servers = Arg.(value & opt int 10 & info [ "servers" ] ~docv:"M" ~doc:"Number of servers.") in
  let horizon = Arg.(value & opt int 336 & info [ "horizon" ] ~docv:"T" ~doc:"Simulated steps.") in
  let period = Arg.(value & opt int 6 & info [ "period" ] ~docv:"P" ~doc:"Steps between rebalances.") in
  let k = Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Per-round move budget.") in
  let crash_rate =
    Arg.(value & opt float 0.002 & info [ "crash-rate" ] ~docv:"P" ~doc:"Per-server per-step crash probability.")
  in
  let mttr =
    Arg.(value & opt int 12 & info [ "mttr" ] ~docv:"STEPS" ~doc:"Mean steps a crashed server stays down.")
  in
  let migration_fail =
    Arg.(value & opt float 0.1 & info [ "migration-fail" ] ~docv:"P" ~doc:"Probability a policy move fails (budget is still spent).")
  in
  let lag =
    Arg.(value & opt int 1 & info [ "lag" ] ~docv:"STEPS" ~doc:"Staleness of the loads policies observe.")
  in
  let noise =
    Arg.(value & opt float 0.1 & info [ "noise" ] ~docv:"X" ~doc:"Multiplicative jitter on observed loads.")
  in
  let recover_below =
    Arg.(value & opt float 1.5 & info [ "recover-below" ] ~docv:"X" ~doc:"Imbalance threshold below which the cluster counts as recovered.")
  in
  let journal_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Record every run as a JSONL flight-recorder journal: crash/recovery \
             transitions, forced evacuations, policy rounds and per-step state.")
  in
  let run csv sites servers horizon period k crash_rate mttr migration_fail lag noise
      recover_below journal_file seed =
    (* Heavy-tailed popularity: the regime where a crashed server can be
       holding a disproportionate share of the load. *)
    let traffic =
      Rebal_sim.Traffic.create (Rng.create seed) ~sites ~horizon ~zipf_alpha:0.8 ~scale:1000
        ~diurnal_depth:0.6 ~noise:0.15 ~flash_prob:0.003 ~flash_mult:5 ~flash_len:8 ()
    in
    let fault =
      Rebal_sim.Fault.create ~seed:(seed + 1) ~servers ~horizon ~crash_rate ~mttr
        ~migration_fail ~lag ~noise ()
    in
    let crashes = List.length (Rebal_sim.Fault.crash_events fault) in
    Printf.printf
      "chaos: %d sites on %d servers over %d steps; %d crash(es), mttr=%d, \
       migration-fail=%.0f%%, lag=%d, noise=%.0f%%\n\n"
      sites servers horizon crashes mttr (100.0 *. migration_fail) lag (100.0 *. noise);
    let journal_oc = Option.map open_out journal_file in
    let journal =
      Option.map
        (fun oc ->
          let sink = Journal.to_channel oc in
          (* One journal for the whole sweep; the header records the chaos
             configuration and a sim_policy event bounds each run. *)
          Journal.write_header sink ~journal:"rebal-sim"
            [
              ("sites", Journal.Int sites);
              ("servers", Journal.Int servers);
              ("horizon", Journal.Int horizon);
              ("period", Journal.Int period);
              ("seed", Journal.Int seed);
              ("crash_rate", Journal.Float crash_rate);
              ("mttr", Journal.Int mttr);
              ("migration_fail", Journal.Float migration_fail);
              ("lag", Journal.Int lag);
              ("noise", Journal.Float noise);
            ];
          sink)
        journal_oc
    in
    let table =
      Rebal_harness.Table.create ~title:"rebalancing under faults"
        ~columns:
          [ "policy"; "mean imb"; "p95 imb"; "dw mksp"; "moves"; "failed"; "emerg"; "fallbk"; "mean recov" ]
    in
    List.iter
      (fun policy ->
        Option.iter
          (fun sink ->
            Journal.emit sink ~kind:"sim_policy"
              [ ("policy", Journal.Str (Rebal_sim.Policy.name policy)) ])
          journal;
        let r =
          Rebal_sim.Simulation.run ~fault ~recovery_threshold:recover_below ?journal traffic
            { Rebal_sim.Simulation.servers; period; policy }
        in
        let recovered =
          List.filter_map (fun rc -> rc.Rebal_sim.Simulation.steps_to_recover)
            r.Rebal_sim.Simulation.recoveries
        in
        let mean_recovery =
          match recovered with
          | [] -> "-"
          | xs ->
            Printf.sprintf "%.1f"
              (float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs))
        in
        Rebal_harness.Table.add_row table
          [
            Rebal_sim.Policy.name policy;
            Printf.sprintf "%.3f" r.Rebal_sim.Simulation.mean_imbalance;
            Printf.sprintf "%.3f" r.Rebal_sim.Simulation.p95_imbalance;
            Printf.sprintf "%.0f" r.Rebal_sim.Simulation.downtime_weighted_makespan;
            string_of_int r.Rebal_sim.Simulation.total_moves;
            string_of_int r.Rebal_sim.Simulation.failed_migrations;
            string_of_int r.Rebal_sim.Simulation.emergency_moves;
            string_of_int r.Rebal_sim.Simulation.fallbacks;
            mean_recovery;
          ])
      [
        Rebal_sim.Policy.No_rebalance;
        Rebal_sim.Policy.Greedy k;
        Rebal_sim.Policy.M_partition k;
        Rebal_sim.Policy.Triggered { k; threshold = 1.3 };
        Rebal_sim.Policy.Full_lpt;
        Rebal_sim.Policy.Failover
          { primary = Rebal_sim.Policy.M_partition k;
            fallback = Rebal_sim.Policy.Greedy k;
            deadline = 0.05 };
      ];
    Rebal_harness.Table.print table;
    Option.iter (fun path -> Rebal_harness.Table.save_csv table ~path) csv;
    Option.iter close_out journal_oc;
    Option.iter
      (fun path -> Printf.printf "wrote fault-plan journal to %s\n" path)
      journal_file
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run the web-server simulation under injected faults: crashes, failed migrations, stale load signals.")
    Term.(
      const run $ csv $ sites $ servers $ horizon $ period $ k $ crash_rate $ mttr
      $ migration_fail $ lag $ noise $ recover_below $ journal_file $ seed_arg)

(* ----- profile ----- *)

(* Flush the process-global heap counters into the current registry
   under stable metric names, so heap work shows up next to the solver
   counters that caused it. *)
let flush_heap_counters (hc : Indexed_heap.counters) =
  let count name help v = Metrics.Counter.set (Metrics.counter ~help name) v in
  let sift dir v =
    Metrics.Counter.set
      (Metrics.counter
         ~labels:[ ("dir", dir) ]
         ~help:"Heap sift swaps by direction" "rebal_heap_sift_steps_total")
      v
  in
  count "rebal_heap_sets_total" "Indexed-heap inserts and priority updates" hc.Indexed_heap.sets;
  count "rebal_heap_removes_total" "Indexed-heap removals" hc.Indexed_heap.removes;
  count "rebal_heap_pops_total" "Indexed-heap pop-min operations" hc.Indexed_heap.pops;
  sift "up" hc.Indexed_heap.sift_up_steps;
  sift "down" hc.Indexed_heap.sift_down_steps

let metric_value_cell (m : Metrics.metric) =
  match m.Metrics.kind with
  | Metrics.Counter c -> string_of_int (Metrics.Counter.value c)
  | Metrics.Gauge g -> Printf.sprintf "%g" (Metrics.Gauge.value g)
  | Metrics.Histogram h ->
    Printf.sprintf "count=%d sum=%g" (Metrics.Histogram.observations h)
      (Metrics.Histogram.sum h)

let counter_table reg =
  let table =
    Rebal_harness.Table.create ~title:"metrics" ~columns:[ "metric"; "labels"; "value" ]
  in
  List.iter
    (fun (m : Metrics.metric) ->
      let labels =
        match m.Metrics.labels with
        | [] -> "-"
        | ls -> String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
      in
      Rebal_harness.Table.add_row table [ m.Metrics.name; labels; metric_value_cell m ])
    (Metrics.Registry.metrics reg);
  table

let profile_cmd =
  let algo =
    Arg.(
      value
      & opt (enum [ ("greedy", `Greedy); ("m-partition", `M_partition) ]) `Greedy
      & info [ "algo" ] ~docv:"ALGO" ~doc:"Algorithm to profile: greedy or m-partition.")
  in
  let n = Arg.(value & opt int 2000 & info [ "n"; "jobs" ] ~docv:"N" ~doc:"Number of jobs.") in
  let m =
    Arg.(value & opt int 16 & info [ "m"; "procs" ] ~docv:"M" ~doc:"Number of processors.")
  in
  let k =
    Arg.(
      value
      & opt (some int) None
      & info [ "k"; "moves" ] ~docv:"K" ~doc:"Move budget (default: n / 10).")
  in
  let dist =
    Arg.(
      value
      & opt dist_conv (Dist.Uniform { lo = 1; hi = 100 })
      & info [ "dist" ] ~docv:"DIST" ~doc:"Job size distribution.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("prom", `Prom); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output: text (span tree + counter table), prom, or json.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the output to $(docv) instead of stdout.")
  in
  let run algo n m k dist format out seed =
    let k = match k with Some k -> k | None -> max 1 (n / 10) in
    Rebal_obs.Control.set_enabled true;
    let reg = Metrics.Registry.create () in
    Metrics.Registry.with_registry reg @@ fun () ->
    Trace.reset ();
    let hc = Indexed_heap.fresh_counters () in
    Indexed_heap.install_counters hc;
    Fun.protect ~finally:Indexed_heap.remove_counters @@ fun () ->
    let rng = Rng.create seed in
    let dist = Dist.prepare dist in
    let inst = Gen.random rng ~n ~m ~dist ~cost:Gen.Unit () in
    let assignment =
      match algo with
      | `Greedy -> Rebal_algo.Greedy.solve inst ~k
      | `M_partition -> Rebal_algo.M_partition.solve inst ~k
    in
    flush_heap_counters hc;
    match format with
    | `Text ->
      let algo_name = match algo with `Greedy -> "greedy" | `M_partition -> "m-partition" in
      let b = Buffer.create 1024 in
      Buffer.add_string b
        (Printf.sprintf "profile: %s n=%d m=%d k=%d makespan=%d (initial %d)\n\n" algo_name n
           m k
           (Assignment.makespan inst assignment)
           (Instance.initial_makespan inst));
      List.iter (fun sp -> Buffer.add_string b (Trace.render_tree sp)) (Trace.finished ());
      Buffer.add_char b '\n';
      Buffer.add_string b (Rebal_harness.Table.render (counter_table reg));
      (match out with
      | None -> print_string (Buffer.contents b)
      | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Buffer.contents b));
        Printf.printf "wrote profile to %s\n" path)
    | (`Prom | `Json) as f -> begin
      (* Machine formats share the Expo dump entry point with the serve
         daemon's --metrics-file. *)
      let fmt = match f with `Prom -> Expo.Prometheus | `Json -> Expo.Json in
      match out with
      | None -> Expo.write fmt stdout reg
      | Some path -> begin
        match Expo.to_file fmt ~path reg with
        | Ok () -> Printf.printf "wrote metrics to %s\n" path
        | Error e ->
          Printf.eprintf "error: %s\n" e;
          exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Solve a generated instance with tracing enabled and print the span tree plus the \
          metric counters the solve produced.")
    Term.(const run $ algo $ n $ m $ k $ dist $ format $ out $ seed_arg)

(* ----- serve ----- *)

(* Raised from the SIGTERM/SIGINT handler: OCaml delivers it at the
   next safe point, which unwinds the blocking read or accept and runs
   every Fun.protect finaliser on the way out — final snapshot, journal
   close, socket unlink. *)
exception Terminated

let serve_cmd =
  let module Engine = Rebal_online.Engine in
  let module Shard = Rebal_online.Shard in
  let module Supervisor = Rebal_online.Supervisor in
  let module Cluster = Rebal_online.Cluster in
  let module Protocol = Rebal_online.Protocol in
  let module Server = Rebal_net.Server in
  let module Http = Rebal_net.Http in
  let module Optrace = Rebal_obs.Optrace in
  let module Tsdb = Rebal_obs.Tsdb in
  let module Alerts = Rebal_obs.Alerts in
  let procs =
    Arg.(value & opt int 8 & info [ "m"; "procs" ] ~docv:"M" ~doc:"Number of processors.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Partition the processors into $(docv) shards, each backed by its own engine \
             (consistent-hash job placement, cross-shard rebalancing). With --journal, \
             shard $(i,i) records to FILE.$(i,i).")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix domain socket instead of stdin/stdout.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Run the shard engines on $(docv) parallel worker domains (clamped to \
             --shards; shard $(i,i) is owned by domain $(i,i) mod $(docv)). Each shard's \
             engine, journal and metrics are confined to its owner domain behind a bounded \
             command mailbox; cross-shard rebalancing uses journaled two-phase transfers, \
             so per-shard journals stay individually replayable. Incompatible with \
             --supervise.")
  in
  let tcp =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:
            "Listen on 127.0.0.1:$(docv) and serve many clients concurrently, one session \
             thread per connection (pipelining allowed; ERR lines stay numbered per \
             session). Port 0 picks a free port (printed on stdout). With --domains the \
             sessions run against the parallel runtime; otherwise they are serialized \
             against the single engine/router under one operation lock.")
  in
  let auto_events =
    Arg.(
      value
      & opt (some int) None
      & info [ "auto-events" ] ~docv:"N" ~doc:"Auto-rebalance every N events.")
  in
  let auto_imbalance =
    Arg.(
      value
      & opt (some float) None
      & info [ "auto-imbalance" ] ~docv:"X"
          ~doc:"Auto-rebalance when makespan / average load exceeds X.")
  in
  let auto_seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "auto-seconds" ] ~docv:"S" ~doc:"Auto-rebalance every S seconds of wall time.")
  in
  let auto_k =
    Arg.(
      value & opt int 16
      & info [ "auto-k" ] ~docv:"K" ~doc:"Move budget for each automatic rebalance.")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-file" ] ~docv:"FILE"
          ~doc:
            "Write the Prometheus metrics snapshot to $(docv) on exit and whenever the \
             daemon receives SIGUSR1.")
  in
  let journal_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Flight recorder: append every engine event to $(docv) (flushed per \
             event). If $(docv) already holds a journal — JSONL or binary, sniffed \
             from the file — the engine state is rebuilt from it first, from the \
             latest snapshot when one was recorded, and the file is appended to in \
             its existing format. Replay it with 'rebalance replay', compact it with \
             'rebalance compact', inspect it with 'rebalance explain' or the JOURNAL \
             protocol verb, convert formats with 'rebalance journal-convert'.")
  in
  let journal_format =
    Arg.(
      value
      & opt (enum [ ("jsonl", Journal.Jsonl); ("binary", Journal.Binary) ]) Journal.Jsonl
      & info [ "journal-format" ] ~docv:"FMT"
          ~doc:
            "On-disk format for a $(b,new) --journal file: $(b,jsonl) (default; one JSON \
             object per line, portable) or $(b,binary) (length-prefixed frames, cheaper \
             on the hot path). Resuming an existing journal keeps the file's own format \
             regardless of this flag. 'rebalance journal-convert' translates both ways.")
  in
  let supervise =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Run the shard router under health supervision: per-shard health states, a \
             watchdog on every operation, automatic evacuation of shards that go down and \
             degraded-mode serving from the survivors. Adds the HEALTH verb and health \
             fields to STATS/SHARDS. Requires --shards >= 2.")
  in
  let evac_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "evac-budget" ] ~docv:"N"
          ~doc:
            "Maximum jobs re-homed per evacuation when a supervised shard goes down \
             (default: unbounded). Jobs beyond the budget stay stranded until the shard is \
             readmitted.")
  in
  let trace_sample =
    Arg.(
      value & opt int 64
      & info [ "trace-sample" ] ~docv:"N"
          ~doc:
            "Head-sample one protocol op in $(docv) for full span recording (TRACES verb). \
             0 disables head sampling.")
  in
  let trace_slow_ms =
    Arg.(
      value & opt float 10.0
      & info [ "trace-slow-ms" ] ~docv:"MS"
          ~doc:
            "Capture every op slower than $(docv) milliseconds into the slow-op ring \
             regardless of sampling (0 captures every op; negative disables tail \
             capture).")
  in
  let telemetry_interval =
    Arg.(
      value
      & opt (some float) None
      & info [ "telemetry-interval" ] ~docv:"S"
          ~doc:
            "Sample every metric into the in-process time-series store every $(docv) \
             seconds (enables the TSDB verb and GET /tsdb). Telemetry is on whenever any \
             of --telemetry-interval, --telemetry-out or --alert-rules is given; the \
             interval defaults to 1 second.")
  in
  let telemetry_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry-out" ] ~docv:"FILE"
          ~doc:
            "Persist telemetry to $(docv) as JSONL (one 'sample' event per tick, one \
             'alert' event per rule transition; resilient line-flushed appends, like \
             --journal). Feed it to 'rebalance postmortem' together with the op journals.")
  in
  let alert_rules =
    Arg.(
      value
      & opt (some string) None
      & info [ "alert-rules" ] ~docv:"FILE"
          ~doc:
            "Load alert rules from $(docv) (one 'alert NAME func(series[window]) OP VALUE \
             for DUR [suspect SHARD]' or 'burnrate NAME bad=... total=... budget=... \
             factor=... short=... long=...' per line) and evaluate them every telemetry \
             tick. Adds the ALERTS verb and GET /alerts; under --supervise, each tick a \
             suspect-annotated rule spends firing is reported to the supervisor as a \
             failure signal against that shard.")
  in
  (* One client session: read commands line by line, stream responses.
     A dropped connection — EOF (even mid-line) on the read side, a
     closed pipe (Sys_error / EPIPE) on either side — ends the session,
     never the daemon. [lock] serializes command execution when the
     target is not internally thread-safe (anything but Parallel) yet
     several threads touch it — concurrent TCP sessions, the telemetry
     sampler. Blocking reads happen outside the lock, so an idle
     session never starves the others.

     I/O runs through Lineio on the raw descriptors: EINTR is retried
     (a SIGTERM mid-drain no longer kills live sessions), and the
     reader's inspectable buffer lets the session coalesce every
     already-arrived line into one [Protocol.handle_lines] dispatch —
     a pipelining client gets its run of mutations executed as a
     single engine batch. The first read of each round still blocks
     (an idle session costs nothing); only the gather loop after it is
     non-blocking. *)
  let module Lineio = Rebal_net.Lineio in
  let session ?lock target ic oc =
    let locked f =
      match lock with
      | None -> f ()
      | Some m ->
        Mutex.lock m;
        Fun.protect ~finally:(fun () -> Mutex.unlock m) f
    in
    try
      (* Channels may hold buffered output from a previous owner of
         this fd pair; push it before switching to raw-fd writes. *)
      flush oc;
      let fd_in = Unix.descr_of_in_channel ic in
      let fd_out = Unix.descr_of_out_channel oc in
      Lineio.write_string fd_out (Protocol.greeting target ^ "\n");
      let r = Lineio.reader fd_in in
      let rec loop lineno =
        match Lineio.read_line r with
        | None -> Protocol.Close
        | Some first ->
          (* Gather whatever else has already arrived — syscall-free
             probe, so a non-pipelining client is never made to wait. *)
          let rec gather acc =
            if Lineio.has_line r then
              match Lineio.read_line r with
              | Some l -> gather (l :: acc)
              | None -> List.rev acc
            else List.rev acc
          in
          let lines = first :: gather [] in
          let out, verdict =
            locked (fun () -> Protocol.handle_lines ~start_line:lineno target lines)
          in
          let buf = Buffer.create 256 in
          List.iter
            (fun l ->
              Buffer.add_string buf l;
              Buffer.add_char buf '\n')
            out;
          Lineio.write_string fd_out (Buffer.contents buf);
          (match verdict with
          | Protocol.Continue -> loop (lineno + List.length lines)
          | v -> v)
      in
      loop 1
    with Sys_error _ | Unix.Unix_error _ -> Protocol.Close
  in
  let run procs shards socket domains tcp auto_events auto_imbalance auto_seconds auto_k
      metrics_file journal_file journal_format supervise evac_budget trace_sample
      trace_slow_ms telemetry_interval telemetry_out alert_rules =
    let cli_trigger =
      match (auto_events, auto_imbalance, auto_seconds) with
      | Some events, None, None -> Some (Engine.Every_events { events; k = auto_k })
      | None, Some threshold, None -> Some (Engine.Imbalance_above { threshold; k = auto_k })
      | None, None, Some seconds -> Some (Engine.Every_seconds { seconds; k = auto_k })
      | None, None, None -> None
      | _ ->
        Printf.eprintf
          "error: give at most one of --auto-events, --auto-imbalance, --auto-seconds\n";
        exit 1
    in
    if shards < 1 || procs < shards then begin
      Printf.eprintf "error: need 1 <= --shards <= --procs (got %d shards, %d procs)\n"
        shards procs;
      exit 1
    end;
    if supervise && shards < 2 then begin
      Printf.eprintf "error: --supervise needs --shards >= 2 (failover needs survivors)\n";
      exit 1
    end;
    (match domains with
    | Some d when d < 1 ->
      Printf.eprintf "error: --domains must be positive (got %d)\n" d;
      exit 1
    | Some _ when supervise ->
      Printf.eprintf "error: --supervise and --domains are mutually exclusive\n";
      exit 1
    | _ -> ());
    if tcp <> None && socket <> None then begin
      Printf.eprintf "error: give at most one of --tcp and --socket\n";
      exit 1
    end;
    (match telemetry_interval with
    | Some s when (not (Float.is_finite s)) || s <= 0.0 ->
      Printf.eprintf "error: --telemetry-interval must be positive (got %g)\n" s;
      exit 1
    | _ -> ());
    (* The daemon is the observed artifact: spans and latency histograms
       are on for its whole lifetime. *)
    Rebal_obs.Control.set_enabled true;
    Optrace.set_sample_every trace_sample;
    Optrace.set_slow_threshold_ns
      (if trace_slow_ms < 0.0 then -1 else int_of_float (trace_slow_ms *. 1e6));
    let opened = ref [] in
    (* One engine bound to one journal file. An existing journal is the
       record of a previous run: replay it (resuming from the latest
       snapshot if compacted), verify it, re-arm its recorded trigger
       (CLI --auto-* flags override), and append. Line-flushed so a
       crash loses at most the event being written. *)
    (* Disk appends go through the resilient wrapper: a transient
       Sys_error (disk full, rotated fd) is retried with backoff, and a
       line that still cannot be written is dropped — counted in
       rebal_journal_dropped_total, kept in the tail ring — instead of
       crashing the serving thread. *)
    let resilient_channel_sink ?format ?start_seq ?header_written path oc =
      let write =
        Journal.resilient ~label:(Filename.basename path) (fun line ->
            output_string oc line;
            flush oc)
      in
      Journal.create ?format ?start_seq ?header_written ~write ()
    in
    (* A resumed journal keeps its on-disk format whatever the flag says
       — appending JSONL lines to a binary file (or vice versa) would
       corrupt it. *)
    let sniff_format path =
      let ic = open_in_bin path in
      let fmt =
        match really_input_string ic (String.length Journal.Binary.magic) with
        | head -> if head = Journal.Binary.magic then Journal.Binary else Journal.Jsonl
        | exception End_of_file -> Journal.Jsonl
      in
      close_in ic;
      fmt
    in
    let journaled_engine ~m path =
      let existing = Sys.file_exists path && (Unix.stat path).Unix.st_size > 0 in
      if existing then begin
        match Result.bind (Journal.load_file path) Replay.resume with
        | Error msg ->
          Printf.eprintf "error: cannot resume journal %s: %s\n" path msg;
          exit 1
        | Ok (eng, outcome) ->
          if Engine.m eng <> m then begin
            Printf.eprintf
              "error: journal %s was recorded over %d processors, this serve would give it \
               %d\n"
              path (Engine.m eng) m;
            exit 1
          end;
          let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
          opened := oc :: !opened;
          let sink =
            resilient_channel_sink ~format:(sniff_format path)
              ~start_seq:(outcome.Replay.events) ~header_written:true path oc
          in
          Engine.set_journal eng (Some sink);
          (match cli_trigger with Some tr -> Engine.set_trigger eng tr | None -> ());
          Printf.eprintf
            "rebalance serve: resumed %s (%d events%s) -> %d jobs, makespan %d\n%!" path
            outcome.Replay.events
            (if outcome.Replay.resumed then ", from snapshot" else "")
            outcome.Replay.final_jobs outcome.Replay.final_makespan;
          eng
      end
      else begin
        let oc = open_out_bin path in
        opened := oc :: !opened;
        let sink = resilient_channel_sink ~format:journal_format path oc in
        let trigger = Option.value cli_trigger ~default:Engine.Manual in
        Engine.create ~trigger ~journal:sink ~m ()
      end
    in
    let fresh_engine ~m () =
      Engine.create ~trigger:(Option.value cli_trigger ~default:Engine.Manual) ~m ()
    in
    (* Shard i's journal: plain FILE when there is one shard, FILE.i
       otherwise — the same naming for sequential and parallel serves,
       so a journal set can be resumed under either runtime. *)
    let shard_journal_path base i = if shards = 1 then base else Printf.sprintf "%s.%d" base i in
    let shard_engine i =
      let m_i = (procs / shards) + if i < procs mod shards then 1 else 0 in
      match journal_file with
      | None -> fresh_engine ~m:m_i ()
      | Some base -> journaled_engine ~m:m_i (shard_journal_path base i)
    in
    let target =
      match domains with
      | Some d -> begin
        (* The parallel runtime: engines built per shard by the cluster
           so each binds (metric handles, journal drop counters) to its
           owner domain's registry. *)
        match Cluster.of_engines ~domains:d ~shards shard_engine with
        | Ok c -> Protocol.Parallel c
        | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
      end
      | None ->
      if shards = 1 then
        Protocol.Single
          (match journal_file with
          | None -> fresh_engine ~m:procs ()
          | Some path -> journaled_engine ~m:procs path)
      else begin
        let engines = Array.init shards shard_engine in
        match Shard.of_engines engines with
        | Ok s ->
          if supervise then begin
            let config =
              {
                Supervisor.default_config with
                Supervisor.evac_budget = Option.value evac_budget ~default:max_int;
              }
            in
            Protocol.Supervised (Supervisor.create ~config s)
          end
          else Protocol.Cluster s
        | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
      end
    in
    (* ----- continuous telemetry ----- *)
    (* The operation lock: everything that touches a non-Parallel target
       from more than one thread — concurrent TCP sessions, the sampler
       tick — runs under it. Parallel targets are internally thread-safe
       (mailbox-confined engines) and skip it. *)
    let op_lock =
      match target with Protocol.Parallel _ -> None | _ -> Some (Mutex.create ())
    in
    let with_op_lock f =
      match op_lock with
      | None -> f ()
      | Some m ->
        Mutex.lock m;
        Fun.protect ~finally:(fun () -> Mutex.unlock m) f
    in
    let telemetry_on =
      telemetry_interval <> None || telemetry_out <> None || alert_rules <> None
    in
    let telemetry =
      if not telemetry_on then None
      else begin
        let sink =
          match telemetry_out with
          | None -> None
          | Some path ->
            let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
            opened := oc :: !opened;
            Some (resilient_channel_sink path oc)
        in
        let tsdb =
          Tsdb.create ?sink
            ~meta:
              [
                ("procs", Journal.Int procs);
                ("shards", Journal.Int shards);
                ( "interval_s",
                  Journal.Float (Option.value telemetry_interval ~default:1.0) );
              ]
            ~source:(fun () -> Metrics.Registry.metrics (Protocol.metrics_registry target))
            ()
        in
        let alerts =
          match alert_rules with
          | None -> None
          | Some path -> (
            match Alerts.parse_rules_file path with
            | Error msg ->
              Printf.eprintf "error: cannot load alert rules: %s\n" msg;
              exit 1
            | Ok [] ->
              Printf.eprintf "error: alert rules file %s holds no rules\n" path;
              exit 1
            | Ok rules ->
              Printf.eprintf "rebalance serve: loaded %d alert rule%s from %s\n%!"
                (List.length rules)
                (if List.length rules = 1 then "" else "s")
                path;
              Some (Alerts.create ?sink ~rules tsdb))
        in
        Protocol.set_telemetry ?alerts tsdb;
        Some (tsdb, alerts)
      end
    in
    let telemetry_stop = ref false in
    let telemetry_thread =
      match telemetry with
      | None -> None
      | Some (tsdb, alerts) ->
        let interval = Option.value telemetry_interval ~default:1.0 in
        let sup = match target with Protocol.Supervised s -> Some s | _ -> None in
        let tick () =
          with_op_lock (fun () ->
              Tsdb.sample tsdb;
              match alerts with
              | None -> ()
              | Some a ->
                ignore (Alerts.eval a);
                (* The feedback loop: every tick a suspect-annotated rule
                   spends Firing is one failure signal against its shard —
                   one tick marks it Suspect, [down_after] sustained ticks
                   tip it Down through the ordinary evacuation path, with
                   the rule's name as the journaled provenance. *)
                match sup with
                | None -> ()
                | Some sup ->
                  List.iter
                    (fun ((r : Alerts.rule), _) ->
                      match r.Alerts.suspect with
                      | Some i when i >= 0 && i < Supervisor.shard_count sup ->
                        ignore (Supervisor.fail ~reason:("alert:" ^ r.Alerts.rule_name) sup i)
                      | _ -> ())
                    (Alerts.firing a))
        in
        (* Sleep in short slices so shutdown never waits out a long
           interval. *)
        let rec pause remaining =
          if (not !telemetry_stop) && remaining > 0.0 then begin
            let step = Float.min 0.05 remaining in
            (try Thread.delay step with Unix.Unix_error _ -> ());
            pause (remaining -. step)
          end
        in
        Some
          (Thread.create
             (fun () ->
               while not !telemetry_stop do
                 tick ();
                 pause interval
               done)
             ())
    in
    let stop_telemetry () =
      telemetry_stop := true;
      (match telemetry_thread with None -> () | Some th -> Thread.join th);
      if telemetry <> None then Protocol.clear_telemetry ()
    in
    let dump_metrics () =
      match metrics_file with
      | None -> ()
      | Some path -> (
        match target with
        | Protocol.Parallel _ ->
          (* The parallel exposition merges the worker-domain registries
             into a fresh one — metrics_lines is that path; reuse it. *)
          (try
             let oc = open_out path in
             List.iter
               (fun l ->
                 output_string oc l;
                 output_char oc '\n')
               (Protocol.metrics_lines target);
             close_out oc
           with Sys_error e ->
             Printf.eprintf "rebalance serve: metrics dump failed: %s\n%!" e)
        | _ ->
          Protocol.export_target target;
          (match
             Expo.to_file ~trailer:"# EOF" Expo.Prometheus ~path
               (Metrics.Registry.current ())
           with
          | Ok () -> ()
          | Error e -> Printf.eprintf "rebalance serve: metrics dump failed: %s\n%!" e))
    in
    if metrics_file <> None then begin
      try Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> dump_metrics ()))
      with Invalid_argument _ -> ()
    end;
    (* Graceful shutdown: a final snapshot marks a compaction point, so
       the next serve resumes from it instead of replaying the whole
       journal, and the channels are flushed and closed cleanly. *)
    let final_snapshot () =
      if journal_file <> None then
        try
          match target with
          | Protocol.Single e -> ignore (Engine.journal_snapshot e)
          | Protocol.Cluster s -> ignore (Shard.journal_snapshot s)
          | Protocol.Supervised sup -> ignore (Shard.journal_snapshot (Supervisor.cluster sup))
          | Protocol.Parallel c -> ignore (Cluster.journal_snapshot c)
        with Failure msg ->
          Printf.eprintf "rebalance serve: final snapshot failed: %s\n%!" msg
    in
    let term_handler = Sys.Signal_handle (fun _ -> raise Terminated) in
    (try Sys.set_signal Sys.sigterm term_handler with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigint term_handler with Invalid_argument _ -> ());
    Fun.protect
      ~finally:(fun () ->
        (* Order matters: the sampler stops first (it holds handles into
           the target and the telemetry sink); the snapshot and the
           metrics merge need the worker domains alive (journals are
           written on their owners); the journal channels are closed
           only after the cluster has drained and joined. *)
        stop_telemetry ();
        final_snapshot ();
        dump_metrics ();
        (match target with
        | Protocol.Parallel c -> Cluster.shutdown c
        | Protocol.Single _ | Protocol.Cluster _ | Protocol.Supervised _ -> ());
        List.iter (fun oc -> try close_out oc with Sys_error _ -> ()) !opened)
    @@ fun () ->
    try
      match (tcp, socket) with
      | Some port, _ ->
        (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
        let srv =
          Server.create ~addr:(Unix.ADDR_INET (Unix.inet_addr_loopback, port)) ()
        in
        let actual =
          match Server.bound_addr srv with Unix.ADDR_INET (_, p) -> p | _ -> port
        in
        Printf.printf "rebalance serve: listening on 127.0.0.1:%d (procs=%d, shards=%d, domains=%d)\n%!"
          actual procs shards
          (match target with Protocol.Parallel c -> Cluster.domain_count c | _ -> 1);
        (* Scrape dispatch: a connection whose first bytes sniff as an
           HTTP request gets one GET /metrics-style answer and closes;
           everything else is a line-protocol session. The sniff peeks
           without consuming, so the protocol stream is untouched. *)
        let http_alerts =
          match telemetry with
          | Some (_, Some a) ->
            Some (fun () -> String.concat "\n" (Alerts.status_lines a) ^ "\n")
          | _ -> None
        in
        let http_tsdb =
          match telemetry with
          | None -> None
          | Some (tsdb, _) ->
            Some
              (fun ~series ~window ->
                match
                  match window with None -> Ok 60.0 | Some w -> Tsdb.parse_duration w
                with
                | Error e -> Error e
                | Ok window_s -> Tsdb.render_json tsdb ~selector:series ~window_s)
        in
        let tcp_session ic oc =
          if Http.sniff (Unix.descr_of_in_channel ic) then begin
            Http.handle
              ~metrics:(fun () -> Protocol.metrics_text target)
              ?alerts:http_alerts ?tsdb:http_tsdb ic oc;
            Protocol.Close
          end
          else session ?lock:op_lock target ic oc
        in
        (* SIGTERM lands as Terminated in this accepting thread; drain
           reuses the graceful path — stop accepting, wait out live
           sessions, shut stragglers down — before the finalisers run. *)
        (try Server.run srv ~session:tcp_session
         with Terminated ->
           Printf.eprintf "rebalance serve: caught termination signal, draining\n%!");
        Server.drain ~grace:5.0 srv
      | None, None -> ignore (session ?lock:op_lock target stdin stdout)
      | None, Some path ->
      (* A client that hangs up mid-response must not kill the daemon:
         with SIGPIPE ignored the write fails as a Sys_error, which ends
         just that session. *)
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      Printf.printf "rebalance serve: listening on %s (procs=%d, shards=%d)\n%!" path procs
        shards;
      let rec accept_loop () =
        match Unix.accept sock with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | fd, _ ->
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          let verdict = session ?lock:op_lock target ic oc in
          (try close_in ic with Sys_error _ -> ());
          (* The engine (and its placement) outlives the connection: clients
             come and go, the daemon keeps serving the same cluster state. *)
          (match verdict with
          | Protocol.Stop -> ()
          | Protocol.Close | Protocol.Continue -> accept_loop ())
      in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close sock with Unix.Unix_error _ -> ());
          try Unix.unlink path with Unix.Unix_error _ -> ())
        accept_loop
    with Terminated ->
      Printf.eprintf "rebalance serve: caught termination signal, shutting down\n%!"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the online rebalancing engine as a long-running service speaking a \
          line-delimited protocol (ADD/REMOVE/RESIZE/REBALANCE/STATS/METRICS) on stdin or a \
          Unix domain socket. With --shards, processors are partitioned across that many \
          independent engines behind a consistent-hash router; with --domains, the shard \
          engines run on parallel worker domains behind bounded mailboxes and --tcp serves \
          many clients concurrently over TCP; with --journal, restarts resume from the \
          recorded state; with --supervise, shard health is tracked and a dead shard's \
          jobs are evacuated onto the survivors; with --telemetry-interval / \
          --telemetry-out / --alert-rules, a sampler thread feeds an in-process \
          time-series store (TSDB verb, GET /tsdb), evaluates SLO alert rules against it \
          (ALERTS verb, GET /alerts) and reports firing suspect-annotated rules to the \
          supervisor. SIGTERM/SIGINT shut the daemon down cleanly: drain sessions, final \
          snapshot, journal close, socket unlink.")
    Term.(
      const run $ procs $ shards $ socket $ domains $ tcp $ auto_events $ auto_imbalance
      $ auto_seconds $ auto_k $ metrics_file $ journal_file $ journal_format $ supervise
      $ evac_budget $ trace_sample $ trace_slow_ms $ telemetry_interval $ telemetry_out
      $ alert_rules)

(* ----- loadgen ----- *)

let loadgen_cmd =
  let module Loadgen = Rebal_net.Loadgen in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")
  in
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"Server TCP port (serve --tcp).")
  in
  let connections =
    Arg.(
      value & opt int 32
      & info [ "connections"; "c" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let rate =
    Arg.(
      value & opt float 2000.0
      & info [ "rate" ] ~docv:"OPS"
          ~doc:"Aggregate open-loop arrival rate in ops/sec, split across connections.")
  in
  let ops =
    Arg.(
      value & opt int 10_000
      & info [ "ops" ] ~docv:"N" ~doc:"Total operations, split across connections.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.") in
  let ids =
    Arg.(
      value & opt int 64
      & info [ "ids" ] ~docv:"N" ~doc:"Id-universe size per connection (live set bound).")
  in
  let max_errors =
    Arg.(
      value & opt int 0
      & info [ "max-errors" ] ~docv:"N"
          ~doc:"Exit 1 if the server answers ERR more than $(docv) times (default 0).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write a JSON summary to $(docv): the run configuration, aggregate \
             count/errors/achieved rate/latency percentiles, and per-verb \
             count/mean/p50/p99.")
  in
  let run host port connections rate ops seed ids max_errors out =
    let cfg = { Loadgen.host; port; connections; rate; ops; seed; ids } in
    match Loadgen.run cfg with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
    | Ok r ->
      Printf.printf
        "LOADGEN connections=%d ops=%d ok=%d errors=%d elapsed=%.3fs throughput=%.0f \
         p50=%.6f p95=%.6f p99=%.6f max=%.6f\n"
        r.Loadgen.connections r.Loadgen.ops r.Loadgen.ok r.Loadgen.errors r.Loadgen.elapsed
        r.Loadgen.throughput r.Loadgen.p50 r.Loadgen.p95 r.Loadgen.p99 r.Loadgen.max_latency;
      (match out with
      | None -> ()
      | Some path -> (
        try
          let oc = open_out path in
          output_string oc (Loadgen.summary_json cfg r);
          output_char oc '\n';
          close_out oc;
          Printf.printf "wrote summary to %s\n" path
        with Sys_error e ->
          Printf.eprintf "error: cannot write summary: %s\n" e;
          exit 1));
      if r.Loadgen.errors > max_errors then begin
        Printf.eprintf "error: %d ERR replies exceed --max-errors %d\n" r.Loadgen.errors
          max_errors;
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a serve --tcp daemon with N concurrent client connections generating a \
          seeded open-loop workload (60% add / 25% remove / 15% resize), and report \
          throughput and open-loop latency percentiles (completion minus scheduled \
          arrival, so server backlog shows up as tail latency).")
    Term.(const run $ host $ port $ connections $ rate $ ops $ seed $ ids $ max_errors $ out)

(* ----- top ----- *)

(* A live terminal view of a parallel serve, built entirely from the
   public protocol: each frame sends STATS, SHARDS and METRICS down one
   TCP connection, parses the Prometheus text back through Expo.parse,
   and derives per-shard queue depth, owner utilization and op rates
   from the labeled series. Nothing here has privileged access —
   anything top shows, any scrape consumer could compute. *)
let top_cmd =
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")
  in
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"Server TCP port (serve --tcp).")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"S" ~doc:"Seconds between refreshes.")
  in
  let once =
    Arg.(value & flag & info [ "once" ] ~doc:"Render a single frame and exit (no screen clearing).")
  in
  let frames =
    Arg.(
      value
      & opt (some int) None
      & info [ "frames" ] ~docv:"N" ~doc:"Stop after $(docv) frames.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("plain", `Plain); ("json", `Json) ]) `Plain
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Frame format: $(b,plain) (terminal table) or $(b,json) (one object per frame).")
  in
  let run host port interval once frames format =
    let fail fmt = Printf.ksprintf (fun s -> Printf.eprintf "error: %s\n" s; exit 1) fmt in
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | exception Not_found -> fail "cannot resolve host %s" host
        | h when Array.length h.Unix.h_addr_list = 0 -> fail "cannot resolve host %s" host
        | h -> h.Unix.h_addr_list.(0))
    in
    (* One token of a key=value line. STATS, SHARD, POINT and the READY
       banner all speak this shape. *)
    let kv line key =
      List.find_map
        (fun tok ->
          match String.index_opt tok '=' with
          | Some i when String.sub tok 0 i = key ->
            Some (String.sub tok (i + 1) (String.length tok - i - 1))
          | _ -> None)
        (String.split_on_char ' ' line)
    in
    let kv_int line key = Option.bind (kv line key) int_of_string_opt in
    let kv_float line key = Option.bind (kv line key) float_of_string_opt in
    (* The connection is disposable state: a server restart or dropped
       TCP session tears it down, the frame loop rebuilds it and keeps
       rendering. [Dropped] is the in-band signal. *)
    let exception Dropped in
    let conn = ref None in
    let ever_connected = ref false in
    let prev_events = ref [||] in
    let prev_time = ref nan in
    (* Whether the server answers TSDB (telemetry on): probed once per
       connection, and the sparkline column degrades away when it says
       ERR. *)
    let tsdb_ok = ref true in
    let disconnect () =
      match !conn with
      | None -> ()
      | Some (fd, _, _, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        conn := None
    in
    let connect () =
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let drop err =
        (try Unix.close sock with Unix.Unix_error _ -> ());
        Error err
      in
      match Unix.connect sock (Unix.ADDR_INET (ip, port)) with
      | exception Unix.Unix_error (e, _, _) -> drop (Unix.error_message e)
      | () -> (
        let ic = Unix.in_channel_of_descr sock in
        let oc = Unix.out_channel_of_descr sock in
        match input_line ic with
        | exception (End_of_file | Sys_error _) -> drop "connection closed during banner"
        | banner ->
          (* A plain engine has no shards= and a sequential cluster no
             domains= in its banner: render what the server has instead
             of refusing to start. *)
          let shards = Option.value ~default:1 (kv_int banner "shards") in
          let domains = Option.value ~default:1 (kv_int banner "domains") in
          conn := Some (sock, ic, oc, shards, domains);
          ever_connected := true;
          prev_events := Array.make shards nan;
          prev_time := nan;
          tsdb_ok := true;
          Ok ())
    in
    let send oc line =
      try
        output_string oc line;
        output_char oc '\n';
        flush oc
      with Sys_error _ -> raise Dropped
    in
    let recv ic =
      match input_line ic with
      | line -> line
      | exception (End_of_file | Sys_error _) -> raise Dropped
    in
    let recv_until_eof ic =
      let rec go acc =
        let l = recv ic in
        if l = "# EOF" then List.rev acc else go (l :: acc)
      in
      go []
    in
    let is_err l = String.length l >= 3 && String.sub l 0 3 = "ERR" in
    let read_stats ic oc =
      send oc "STATS";
      let l = recv ic in
      if is_err l then None else Some l
    in
    (* An ERR answer (single engine: no SHARDS verb) degrades the
       per-shard columns to n/a instead of killing the viewer. *)
    let read_shards ic oc shards =
      send oc "SHARDS";
      let first = recv ic in
      if is_err first then None
      else Some (first :: List.init (shards - 1) (fun _ -> recv ic))
    in
    let read_metrics ic oc =
      send oc "METRICS";
      let b = Buffer.create 8192 in
      List.iter
        (fun line ->
          Buffer.add_string b line;
          Buffer.add_char b '\n')
        (recv_until_eof ic);
      Buffer.contents b
    in
    (* The trend column: per-shard event-counter deltas over the last
       minute of the server's time-series store, drawn as a sparkline.
       Served only when telemetry is on — the first ERR turns the
       column off for the rest of the connection. *)
    let glyphs =
      [| "\u{2581}"; "\u{2582}"; "\u{2583}"; "\u{2584}"; "\u{2585}"; "\u{2586}";
         "\u{2587}"; "\u{2588}" |]
    in
    let sparkline ds =
      let hi = List.fold_left Float.max 0.0 ds in
      let b = Buffer.create 64 in
      List.iter
        (fun v ->
          let i = if hi <= 0.0 then 0 else min 7 (int_of_float (v /. hi *. 8.0)) in
          Buffer.add_string b glyphs.(i))
        ds;
      Buffer.contents b
    in
    let read_spark ic oc i =
      if not !tsdb_ok then None
      else begin
        send oc (Printf.sprintf "TSDB rebal_engine_events_total{shard=\"%d\"} 60s" i);
        match recv_until_eof ic with
        | l :: _ when is_err l ->
          tsdb_ok := false;
          None
        | lines ->
          let lasts =
            List.filter_map
              (fun l ->
                if String.length l >= 6 && String.sub l 0 6 = "POINT " then kv_float l "last"
                else None)
              lines
          in
          let rec deltas = function
            | a :: (b :: _ as rest) -> Float.max 0.0 (b -. a) :: deltas rest
            | _ -> []
          in
          let ds = Array.of_list (deltas lasts) in
          let n = Array.length ds in
          if n = 0 then None
          else begin
            let keep = min 16 n in
            Some (sparkline (Array.to_list (Array.sub ds (n - keep) keep)))
          end
      end
    in
    let sample_value samples name labels =
      Option.map (fun s -> s.Expo.value) (Expo.find_sample samples name labels)
    in
    (* Cluster-wide p99 of the session latency histogram: per-verb
       cumulative buckets summed by upper bound, then the first bound
       covering 99% of the total count. A bucket edge, so an upper
       bound — exactly what a dashboard quantile over the same series
       would report. *)
    let session_p99 samples =
      let by_le = Hashtbl.create 32 in
      let total = ref 0.0 in
      List.iter
        (fun (s : Expo.sample) ->
          if s.Expo.sample_name = "rebal_session_latency_seconds_bucket" then (
            match List.assoc_opt "le" s.Expo.sample_labels with
            | Some le ->
              let le = if le = "+Inf" then infinity else float_of_string le in
              Hashtbl.replace by_le le
                ((try Hashtbl.find by_le le with Not_found -> 0.0) +. s.Expo.value)
            | None -> ())
          else if s.Expo.sample_name = "rebal_session_latency_seconds_count" then
            total := !total +. s.Expo.value)
        samples;
      if !total <= 0.0 then None
      else
        let les = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_le []) in
        let target = 0.99 *. !total in
        List.find_opt (fun le -> Hashtbl.find by_le le >= target) les
    in
    let fmt_p99 = function
      | None -> "n/a"
      | Some le when le = infinity -> "+Inf"
      | Some le -> Printf.sprintf "<=%.4gs" le
    in
    let fmt_opt fmt = function None -> "n/a" | Some v -> Printf.sprintf fmt v in
    let frame ic oc shards domains =
      let stats = read_stats ic oc in
      let shard_lines = read_shards ic oc shards in
      let samples =
        (* Unparseable METRICS degrades to empty samples: the layout
           columns render n/a and the viewer keeps refreshing. *)
        match Expo.parse (read_metrics ic oc) with Ok s -> s | Error _ -> []
      in
      let stat_int key = Option.bind stats (fun s -> kv_int s key) in
      let stat_float key = Option.bind stats (fun s -> kv_float s key) in
      let now = Unix.gettimeofday () in
      let dt = now -. !prev_time in
      let shard_line i =
        match shard_lines with Some lines -> List.nth_opt lines i | None -> None
      in
      let rows =
        List.init shards (fun i ->
            let line = shard_line i in
            let owner = i mod domains in
            let shard_l = [ ("shard", string_of_int i) ] in
            let dom_l = [ ("domain", string_of_int owner) ] in
            let events =
              Option.value ~default:nan
                (sample_value samples "rebal_engine_events_total" shard_l)
            in
            let rate =
              if Float.is_nan (!prev_events).(i) || Float.is_nan dt || dt <= 0.0 then None
              else Some ((events -. (!prev_events).(i)) /. dt)
            in
            (!prev_events).(i) <- events;
            ( i,
              owner,
              Option.bind line (fun l -> kv_int l "jobs"),
              Option.bind line (fun l -> kv_int l "makespan"),
              Option.bind line (fun l -> kv_float l "imbalance"),
              sample_value samples "rebal_mailbox_depth" dom_l,
              sample_value samples "rebal_domain_utilization" dom_l,
              rate,
              read_spark ic oc i ))
      in
      prev_time := now;
      let p99 = session_p99 samples in
      match format with
      | `Json ->
        let j_opt f = function None -> Journal.Null | Some v -> f v in
        let j_num v = if Float.is_nan v then Journal.Null else Journal.Float v in
        print_endline
          (Journal.render_json
             (Journal.Obj
                [
                  ("host", Journal.Str host);
                  ("port", Journal.Int port);
                  ("shards", Journal.Int shards);
                  ("domains", Journal.Int domains);
                  ("jobs", j_opt (fun v -> Journal.Int v) (stat_int "jobs"));
                  ("makespan", j_opt (fun v -> Journal.Int v) (stat_int "makespan"));
                  ("imbalance", j_opt j_num (stat_float "imbalance"));
                  ("session_p99_le_s", j_opt j_num p99);
                  ( "per_shard",
                    Journal.List
                      (List.map
                         (fun (i, owner, jobs, makespan, imb, depth, util, rate, spark) ->
                           Journal.Obj
                             [
                               ("shard", Journal.Int i);
                               ("domain", Journal.Int owner);
                               ("jobs", j_opt (fun v -> Journal.Int v) jobs);
                               ("load", j_opt (fun v -> Journal.Int v) makespan);
                               ("imbalance", j_opt j_num imb);
                               ("queue_depth", j_opt j_num depth);
                               ("utilization", j_opt j_num util);
                               ("ops_per_s", j_opt j_num rate);
                               ("trend", j_opt (fun s -> Journal.Str s) spark);
                             ])
                         rows) );
                ]))
      | `Plain ->
        let b = Buffer.create 1024 in
        Printf.ksprintf (Buffer.add_string b)
          "rebalance top  %s:%d  shards=%d domains=%d  jobs=%s makespan=%s imbalance=%s \
           session_p99=%s\n"
          host port shards domains
          (fmt_opt "%d" (stat_int "jobs"))
          (fmt_opt "%d" (stat_int "makespan"))
          (fmt_opt "%.3f" (stat_float "imbalance"))
          (fmt_p99 p99);
        Printf.ksprintf (Buffer.add_string b) "%5s %4s %7s %7s %7s %7s %6s %9s %s\n" "SHARD"
          "DOM" "JOBS" "LOAD" "IMB" "DEPTH" "UTIL" "OPS/S" "TREND";
        List.iter
          (fun (i, owner, jobs, makespan, imb, depth, util, rate, spark) ->
            Printf.ksprintf (Buffer.add_string b) "%5d %4d %7s %7s %7s %7s %6s %9s %s\n" i
              owner (fmt_opt "%d" jobs) (fmt_opt "%d" makespan) (fmt_opt "%.3f" imb)
              (fmt_opt "%.0f" depth) (fmt_opt "%.2f" util) (fmt_opt "%.0f" rate)
              (Option.value ~default:"" spark))
          rows;
        print_string (Buffer.contents b);
        flush stdout
    in
    let n_frames = if once then Some 1 else frames in
    let rec loop n =
      (* Refresh mode: home the cursor and clear before each redraw. *)
      if format = `Plain && n > 0 then print_string "\027[H\027[2J";
      (match !conn with
      | Some _ -> ()
      | None -> (
        match connect () with
        | Ok () -> ()
        | Error e ->
          (* A server that was never there is an operator error; one
             that went away is an outage to ride out. *)
          if not !ever_connected then fail "cannot connect to %s:%d: %s" host port e
          else Printf.eprintf "top: cannot reconnect to %s:%d: %s (retrying)\n%!" host port e));
      (match !conn with
      | None -> ()
      | Some (_, ic, oc, shards, domains) -> (
        try frame ic oc shards domains
        with Dropped ->
          disconnect ();
          Printf.eprintf "top: connection lost, reconnecting\n%!"));
      match n_frames with
      | Some k when n + 1 >= k -> ()
      | _ ->
        (try Unix.sleepf interval with Unix.Unix_error _ -> ());
        loop (n + 1)
    in
    loop 0;
    (match !conn with
    | Some (_, _, oc, _, _) -> ( try send oc "QUIT" with Dropped -> ())
    | None -> ());
    disconnect ()
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live cluster telemetry over the line protocol: a refreshing per-shard view of \
          load, queue depth, owner-domain utilization, op rate, session p99 and (when the \
          daemon samples telemetry) a per-shard event-rate sparkline, against any serve \
          --tcp daemon. Survives server restarts by reconnecting, and degrades missing \
          data to n/a instead of dying. --once --format json emits one machine-readable \
          frame for scripts and CI.")
    Term.(const run $ host $ port $ interval $ once $ frames $ format)

(* ----- postmortem ----- *)

(* Joins a telemetry journal (the "sample" / "alert" events serve
   --telemetry-out writes) with one or more op journals (--journal)
   into one correlated timeline. Both speak JSONL with ts_ns from the
   same monotonic clock, so events written by one process line up
   exactly; the interesting joins — an evacuation whose reason names
   the alert that caused it, a makespan drop bracketing a rebalance —
   are annotated inline. *)
let postmortem_cmd =
  let telemetry =
    Arg.(
      value
      & opt (some file) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:"Telemetry journal written by serve --telemetry-out.")
  in
  let journals =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"JOURNAL"
          ~doc:"Op journal file(s) written by serve --journal (FILE.i per shard).")
  in
  let window =
    Arg.(
      value & opt float 5.0
      & info [ "window" ] ~docv:"S"
          ~doc:
            "Correlation window: a journal event and an alert transition (or metric \
             sample) at most $(docv) seconds apart are reported together.")
  in
  let run telemetry journals window =
    let fail fmt = Printf.ksprintf (fun s -> Printf.eprintf "error: %s\n" s; exit 1) fmt in
    if telemetry = None && journals = [] then
      fail "nothing to correlate: give --telemetry FILE and/or journal files";
    if (not (Float.is_finite window)) || window < 0.0 then
      fail "--window must be a non-negative number of seconds";
    let parse path =
      match Journal.load_file path with Ok v -> v | Error e -> fail "%s: %s" path e
    in
    let tel_events =
      match telemetry with None -> [] | Some path -> snd (parse path)
    in
    let samples = List.filter (fun e -> e.Journal.kind = "sample") tel_events in
    let alert_events = List.filter (fun e -> e.Journal.kind = "alert") tel_events in
    (* Alert events carry the tick timestamp as at_ns (the store's
       clock); fall back to the sink's ts_ns. *)
    let at_of e =
      match Journal.int_field e "at_ns" with Ok v -> v | Error _ -> e.Journal.ts_ns
    in
    let alerts =
      List.map
        (fun e ->
          let sf key = match Journal.str_field e key with Ok s -> s | Error _ -> "?" in
          let value =
            match Journal.float_field e "value" with Ok v -> Some v | Error _ -> None
          in
          (at_of e, sf "rule", sf "from", sf "to", value))
        alert_events
    in
    let firings =
      List.filter_map
        (fun (at, rule, _, to_, _) -> if to_ = "firing" then Some (at, rule) else None)
        alerts
    in
    let w_ns = int_of_float (window *. 1e9) in
    (* Headline metrics out of a sample: a series key either matches the
       name exactly or is the labelled form name{...}. Cluster makespan
       is the max over per-shard series, job count the sum. *)
    let sample_values e name =
      match Journal.field e "metrics" with
      | Some (Journal.Obj kvs) ->
        List.filter_map
          (fun (k, v) ->
            let n = String.length name in
            let matches =
              k = name
              || (String.length k > n && String.sub k 0 (n + 1) = name ^ "{")
            in
            if not matches then None
            else
              match v with
              | Journal.Float f -> Some f
              | Journal.Int i -> Some (float_of_int i)
              | _ -> None)
          kvs
      | _ -> []
    in
    let makespan_of e =
      match sample_values e "rebal_engine_makespan" with
      | [] -> None
      | vs -> Some (List.fold_left Float.max neg_infinity vs)
    in
    let bracketing_samples t_ns =
      let before =
        List.fold_left
          (fun acc e ->
            let a = at_of e in
            if a <= t_ns && t_ns - a <= w_ns then Some e else acc)
          None samples
      in
      let after =
        List.find_opt
          (fun e ->
            let a = at_of e in
            a >= t_ns && a - t_ns <= w_ns)
          samples
      in
      (before, after)
    in
    (* Journal events: ops are tallied, structural events (rebalance,
       trigger, snapshot, check, evacuation, ...) go on the timeline
       with their scalar fields. *)
    let json_scalar = function
      | Journal.Int i -> Some (string_of_int i)
      | Journal.Float f -> Some (Printf.sprintf "%g" f)
      | Journal.Str s -> Some s
      | Journal.Bool b -> Some (string_of_bool b)
      | Journal.Null | Journal.List _ | Journal.Obj _ -> None
    in
    let fields_text e =
      String.concat " "
        (List.filter_map
           (fun (k, v) -> Option.map (fun s -> k ^ "=" ^ s) (json_scalar v))
           e.Journal.fields)
    in
    let op_counts = Hashtbl.create 8 in
    let bump kind = Hashtbl.replace op_counts kind (1 + try Hashtbl.find op_counts kind with Not_found -> 0) in
    let structural = ref [] in
    let n_journal_events = ref 0 in
    List.iter
      (fun path ->
        let _, events = parse path in
        let tag = Filename.basename path in
        List.iter
          (fun e ->
            incr n_journal_events;
            match e.Journal.kind with
            | "add" | "remove" | "resize" -> bump e.Journal.kind
            | _ -> structural := (e.Journal.ts_ns, tag, e) :: !structural)
          events)
      journals;
    (* The annotations: provenance first (an evacuation whose reason
       names an alert joins to that rule's latest firing), then the
       nearest alert transition in the window, then the makespan swing
       across the bracketing samples. *)
    let annotate at_ns e =
      let notes = ref [] in
      let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
      (match Journal.str_field e "reason" with
      | Ok reason
        when String.length reason > 6 && String.sub reason 0 6 = "alert:" ->
        let rule = String.sub reason 6 (String.length reason - 6) in
        (match
           List.fold_left
             (fun acc (at, r) -> if r = rule && at <= at_ns then Some at else acc)
             None firings
         with
        | Some at -> note "alert %s fired %.1fs before" rule (float_of_int (at_ns - at) /. 1e9)
        | None -> note "alert %s (no firing transition in telemetry)" rule)
      | _ -> (
        match
          List.fold_left
            (fun acc (at, rule, from_, to_, _) ->
              let d = abs (at - at_ns) in
              if d <= w_ns then
                match acc with
                | Some (best, _) when best <= d -> acc
                | _ -> Some (d, Printf.sprintf "alert %s %s->%s %.1fs %s" rule from_ to_
                               (float_of_int d /. 1e9)
                               (if at <= at_ns then "before" else "after"))
              else acc)
            None alerts
        with
        | Some (_, text) -> note "%s" text
        | None -> ()));
      (match bracketing_samples at_ns with
      | Some b, Some a -> (
        match (makespan_of b, makespan_of a) with
        | Some mb, Some ma when mb <> ma -> note "makespan %g -> %g across this event" mb ma
        | _ -> ())
      | _ -> ());
      match List.rev !notes with
      | [] -> ""
      | notes -> "  [" ^ String.concat "; " notes ^ "]"
    in
    let entries =
      List.map
        (fun (at, rule, from_, to_, value) ->
          ( at,
            "telemetry",
            Printf.sprintf "alert %s: %s -> %s%s" rule from_ to_
              (match value with None -> "" | Some v -> Printf.sprintf " (value=%g)" v) ))
        alerts
      @ List.map
          (fun (at, tag, e) ->
            let fields = fields_text e in
            ( at,
              tag,
              Printf.sprintf "%s%s%s" e.Journal.kind
                (if fields = "" then "" else " " ^ fields)
                (annotate at e) ))
          !structural
    in
    let entries = List.sort (fun (a, _, _) (b, _, _) -> compare a b) entries in
    Printf.printf "postmortem: %d telemetry events (%d samples, %d alert transitions), %d journal events from %d journal(s)\n"
      (List.length tel_events) (List.length samples) (List.length alerts)
      !n_journal_events (List.length journals);
    let ops =
      List.filter_map
        (fun k ->
          match Hashtbl.find_opt op_counts k with
          | Some n -> Some (Printf.sprintf "%s=%d" k n)
          | None -> None)
        [ "add"; "remove"; "resize" ]
    in
    if ops <> [] then Printf.printf "ops: %s\n" (String.concat " " ops);
    (match entries with
    | [] -> print_endline "timeline: no structural events"
    | (t0, _, _) :: _ ->
      Printf.printf "timeline (T0 = first event):\n";
      List.iter
        (fun (at, tag, text) ->
          Printf.printf "T+%9.3fs  %-12s %s\n" (float_of_int (at - t0) /. 1e9) tag text)
        entries)
  in
  Cmd.v
    (Cmd.info "postmortem"
       ~doc:
         "Correlate a telemetry journal (serve --telemetry-out) with op journals (serve \
          --journal) into one timeline: alert transitions, rebalances, trigger firings \
          and evacuations in time order, each annotated with the alert that caused or \
          accompanied it and the makespan swing across it.")
    Term.(const run $ telemetry $ journals $ window)

(* ----- chaos-serve ----- *)


(* The online counterpart of `chaos`: instead of simulating policies
   over traffic curves, it drives a real supervised shard cluster —
   the same Engine/Shard/Supervisor stack `serve --supervise` runs —
   through a seeded workload while a seeded fault plan kills and
   revives shards. Every shard journals to memory, so the run ends
   with the full robustness audit: work conservation against a
   reference model, per-shard journal replay with divergence checks,
   and the router's own consistency check. Exit status 1 on any
   failure makes it a CI smoke test. *)
let chaos_serve_cmd =
  let module Engine = Rebal_online.Engine in
  let module Shard = Rebal_online.Shard in
  let module Supervisor = Rebal_online.Supervisor in
  let module Protocol = Rebal_online.Protocol in
  let module Tsdb = Rebal_obs.Tsdb in
  let module Alerts = Rebal_obs.Alerts in
  let shards = Arg.(value & opt int 8 & info [ "shards" ] ~docv:"S" ~doc:"Number of shards.") in
  let procs =
    Arg.(value & opt int 32 & info [ "m"; "procs" ] ~docv:"M" ~doc:"Total processors.")
  in
  let horizon =
    Arg.(value & opt int 400 & info [ "horizon" ] ~docv:"T" ~doc:"Driven steps.")
  in
  let ops_per_step =
    Arg.(
      value & opt int 8
      & info [ "ops-per-step" ] ~docv:"N"
          ~doc:"Workload operations per step (60% add, 25% remove, 15% resize).")
  in
  let crash_rate =
    Arg.(
      value & opt float 0.005
      & info [ "crash-rate" ] ~docv:"P"
          ~doc:"Per-shard per-step crash probability of the seeded fault plan.")
  in
  let mttr =
    Arg.(
      value & opt int 60
      & info [ "mttr" ] ~docv:"STEPS" ~doc:"Mean steps a crashed shard stays down.")
  in
  let kills =
    Arg.(
      value
      & opt_all (pair ~sep:':' int int) []
      & info [ "kill" ] ~docv:"SHARD:STEP"
          ~doc:
            "Explicit kill schedule: shard $(i,SHARD) goes down at step $(i,STEP) \
             (repeatable). When given, replaces the seeded fault plan.")
  in
  let down_for =
    Arg.(
      value & opt int 80
      & info [ "down-for" ] ~docv:"STEPS"
          ~doc:"How long an explicitly killed shard stays down (with --kill).")
  in
  let evac_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "evac-budget" ] ~docv:"N"
          ~doc:"Maximum jobs re-homed per evacuation (default: unbounded).")
  in
  let period =
    Arg.(
      value & opt int 10
      & info [ "period" ] ~docv:"P" ~doc:"Steps between rebalance passes.")
  in
  let k =
    Arg.(value & opt int 16 & info [ "k" ] ~docv:"K" ~doc:"Move budget per rebalance pass.")
  in
  let telemetry_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry-out" ] ~docv:"FILE"
          ~doc:
            "Sample every metric once per step into a time-series store and persist the \
             telemetry to $(docv) as JSONL — the same format serve --telemetry-out writes, \
             so 'rebalance postmortem' can join it with the journals of this run.")
  in
  let alert_rules =
    Arg.(
      value
      & opt (some string) None
      & info [ "alert-rules" ] ~docv:"FILE"
          ~doc:
            "Evaluate alert rules (serve --alert-rules format) against the per-step \
             telemetry; transitions land in --telemetry-out as 'alert' events.")
  in
  let journal_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-out" ] ~docv:"BASE"
          ~doc:
            "After the audit, write shard $(i,i)'s in-memory journal to $(docv).$(i,i) — \
             feed them to 'rebalance postmortem' or 'rebalance replay'.")
  in
  let run shards procs horizon ops_per_step crash_rate mttr kills down_for evac_budget period
      k telemetry_out alert_rules journal_out seed =
    if shards < 2 || procs < shards then begin
      Printf.eprintf "error: need 2 <= --shards <= --procs (got %d shards, %d procs)\n"
        shards procs;
      exit 1
    end;
    List.iter
      (fun (s, t) ->
        if s < 0 || s >= shards || t < 0 || t >= horizon then begin
          Printf.eprintf "error: --kill %d:%d is outside %d shards x %d steps\n" s t shards
            horizon;
          exit 1
        end)
      kills;
    let fault =
      if kills = [] then
        Some
          (Rebal_sim.Fault.create ~seed:(seed + 1) ~servers:shards ~horizon ~crash_rate
             ~mttr ())
      else None
    in
    let live i t =
      match fault with
      | Some f -> Rebal_sim.Fault.is_live f ~server:i ~time:t
      | None -> not (List.exists (fun (s, st) -> s = i && t >= st && t < st + down_for) kills)
    in
    (* In-memory journals: one buffer per shard, written through the
       engines' ordinary sinks, replayed wholesale at the end. *)
    let buffers = Array.init shards (fun _ -> Buffer.create 4096) in
    let cluster =
      Shard.create
        ~journal_for:(fun i -> Some (Journal.create ~write:(Buffer.add_string buffers.(i)) ()))
        ~m:procs ~shards ()
    in
    let time = ref 0 in
    let config =
      {
        Supervisor.default_config with
        Supervisor.suspect_after = 1;
        down_after = 2;
        recovery_steps = 4;
        evac_budget = Option.value evac_budget ~default:max_int;
      }
    in
    let sup = Supervisor.create ~config ~probe:(fun i -> live i !time) cluster in
    (* Per-step telemetry: the same store/rule-engine pair serve runs on
       a timer, ticked once per driven step. Journal events and samples
       share the monotonic clock, so postmortem lines them up. *)
    let telemetry_oc = ref None in
    let telemetry =
      if telemetry_out = None && alert_rules = None then None
      else begin
        Rebal_obs.Control.set_enabled true;
        let sink =
          match telemetry_out with
          | None -> None
          | Some path ->
            let oc = open_out path in
            telemetry_oc := Some oc;
            Some
              (Journal.create
                 ~write:(fun line ->
                   output_string oc line;
                   flush oc)
                 ())
        in
        let target = Protocol.Supervised sup in
        let tsdb =
          Tsdb.create ?sink
            ~meta:[ ("mode", Journal.Str "chaos-serve"); ("shards", Journal.Int shards) ]
            ~source:(fun () -> Metrics.Registry.metrics (Protocol.metrics_registry target))
            ()
        in
        let alerts =
          match alert_rules with
          | None -> None
          | Some path -> (
            match Alerts.parse_rules_file path with
            | Error msg ->
              Printf.eprintf "error: cannot load alert rules: %s\n" msg;
              exit 1
            | Ok rules -> Some (Alerts.create ?sink ~rules tsdb))
        in
        Some (tsdb, alerts)
      end
    in
    (* Reference model: what the workload believes is live. Anything the
       cluster accepted must survive every kill and recovery. *)
    let model = Hashtbl.create 1024 in
    let live_ids = ref (Array.make 16 "") in
    let n_live = ref 0 in
    let push id =
      if !n_live = Array.length !live_ids then begin
        let bigger = Array.make ((2 * !n_live) + 16) "" in
        Array.blit !live_ids 0 bigger 0 !n_live;
        live_ids := bigger
      end;
      !live_ids.(!n_live) <- id;
      incr n_live
    in
    let remove_at j =
      !live_ids.(j) <- !live_ids.(!n_live - 1);
      decr n_live
    in
    let rng = Rng.create seed in
    let next_id = ref 0 in
    let rejected = ref 0 in
    let down_at = Array.make shards (-1) in
    let recoveries = ref [] in
    let downtime_weighted = ref 0.0 in
    let failures = ref [] in
    let failf fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
    for t = 0 to horizon - 1 do
      time := t;
      ignore (Supervisor.tick sup);
      for i = 0 to shards - 1 do
        (match Supervisor.health sup i with
        | Supervisor.Down when down_at.(i) < 0 -> down_at.(i) <- t
        | Supervisor.Healthy when down_at.(i) >= 0 ->
          recoveries := (i, down_at.(i), t) :: !recoveries;
          down_at.(i) <- -1
        | _ -> ());
        (* Re-admission: the fault plan revived the shard, so rebuild
           its engine from its own journal — the evacuation removes
           were recorded, so the restored engine agrees with the
           directory — and let the supervisor ramp it back in. *)
        if Supervisor.health sup i = Supervisor.Down && live i t then begin
          match
            Result.bind (Journal.parse_string (Buffer.contents buffers.(i))) Replay.resume
          with
          | Error msg -> failf "shard %d: restore for readmission failed: %s" i msg
          | Ok (eng, outcome) ->
            Engine.set_journal eng
              (Some
                 (Journal.create ~start_seq:outcome.Replay.events ~header_written:true
                    ~write:(Buffer.add_string buffers.(i)) ()));
            (match Supervisor.readmit sup i eng with
            | Ok () -> ()
            | Error msg -> failf "shard %d: readmission rejected: %s" i msg)
        end
      done;
      for _ = 1 to ops_per_step do
        let r = Rng.float rng 1.0 in
        if r < 0.6 || !n_live = 0 then begin
          let id = Printf.sprintf "c%d" !next_id in
          incr next_id;
          let size = Rng.int_range rng 1 100 in
          match Supervisor.add_job sup ~id ~size with
          | Ok _ ->
            Hashtbl.replace model id size;
            push id
          | Error _ -> incr rejected
        end
        else begin
          let j = Rng.int rng !n_live in
          let id = !live_ids.(j) in
          if r < 0.85 then (
            match Supervisor.remove_job sup ~id with
            | Ok _ ->
              Hashtbl.remove model id;
              remove_at j
            | Error _ -> incr rejected)
          else begin
            let size = Rng.int_range rng 1 100 in
            match Supervisor.resize_job sup ~id ~size with
            | Ok _ -> Hashtbl.replace model id size
            | Error _ -> incr rejected
          end
        end
      done;
      if (t + 1) mod period = 0 then ignore (Supervisor.rebalance sup ~k);
      (* Downtime-weighted makespan, the chaos scoring rule: a step
         served with dead shards counts its makespan once per missing
         shard on top of the base weight. *)
      let serving = Supervisor.serving_shards sup in
      downtime_weighted :=
        !downtime_weighted
        +. (float_of_int (Shard.makespan cluster) *. float_of_int (1 + shards - serving));
      match telemetry with
      | None -> ()
      | Some (tsdb, alerts) ->
        Tsdb.sample tsdb;
        Option.iter (fun a -> ignore (Alerts.eval a)) alerts
    done;
    (* ----- the audit ----- *)
    let lost =
      Hashtbl.fold
        (fun id size acc ->
          match Shard.find cluster id with
          | Some (sz, _) when sz = size -> acc
          | Some _ | None -> id :: acc)
        model []
    in
    if lost <> [] then
      failf "%d job(s) lost or corrupted (e.g. %s)" (List.length lost)
        (List.hd (List.sort compare lost));
    if Shard.job_count cluster <> Hashtbl.length model then
      failf "cluster holds %d job(s), workload expects %d (strays or duplicates)"
        (Shard.job_count cluster) (Hashtbl.length model);
    if not (Shard.check_consistency cluster ~k:16) then failf "cluster consistency check failed";
    let replays_clean = ref 0 in
    Array.iteri
      (fun i buf ->
        match Result.bind (Journal.parse_string (Buffer.contents buf)) Replay.resume with
        | Error msg -> failf "shard %d journal replay: %s" i msg
        | Ok (eng, _) ->
          let live_eng = Shard.engine cluster i in
          let same_jobs =
            Engine.fold_jobs live_eng
              (fun acc ~id ~size ~proc ->
                acc
                &&
                match Engine.find eng id with
                | Some (sz, p) -> sz = size && p = proc
                | None -> false)
              true
          in
          if
            Engine.job_count eng <> Engine.job_count live_eng
            || Engine.makespan eng <> Engine.makespan live_eng
            || not same_jobs
          then failf "shard %d journal replay diverges from live state" i
          else incr replays_clean)
      buffers;
    let h = Supervisor.stats sup in
    Printf.printf "chaos-serve: %d shards, %d procs, %d steps x %d ops, seed=%d%s\n" shards
      procs horizon ops_per_step seed
      (if kills = [] then
         Printf.sprintf " (crash-rate=%.3f, mttr=%d)" crash_rate mttr
       else Printf.sprintf " (%d explicit kill(s), down-for=%d)" (List.length kills) down_for);
    Printf.printf
      "  evacuations=%d evacuated_jobs=%d stranded=%d readmissions=%d rejected_ops=%d\n"
      h.Supervisor.evacuations h.Supervisor.evacuated_jobs h.Supervisor.stranded_jobs
      h.Supervisor.readmissions !rejected;
    List.iter
      (fun (i, went_down, healthy_again) ->
        Printf.printf "  shard %d: down at step %d, healthy again at step %d (%d steps)\n" i
          went_down healthy_again (healthy_again - went_down))
      (List.rev !recoveries);
    Array.iteri
      (fun i at ->
        if at >= 0 then
          Printf.printf "  shard %d: still %s at end (down since step %d)\n" i
            (Supervisor.health_name (Supervisor.health sup i))
            at)
      down_at;
    (match List.map (fun (_, d, h') -> h' - d) !recoveries with
    | [] -> ()
    | xs ->
      Printf.printf "  mean recovery: %.1f steps\n"
        (float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)));
    Printf.printf "  downtime-weighted makespan: %.0f\n" !downtime_weighted;
    Printf.printf "  jobs live: %d, makespan: %d\n" (Shard.job_count cluster)
      (Shard.makespan cluster);
    (match telemetry with
    | None -> ()
    | Some (tsdb, alerts) ->
      Printf.printf "  telemetry: %d samples, %d series%s\n" (Tsdb.samples_taken tsdb)
        (List.length (Tsdb.series_list tsdb))
        (match alerts with
        | None -> ""
        | Some a -> Printf.sprintf ", %d alert transition(s)" (List.length (Alerts.transitions a))));
    (match journal_out with
    | None -> ()
    | Some base ->
      Array.iteri
        (fun i buf ->
          let path = Printf.sprintf "%s.%d" base i in
          try
            let oc = open_out path in
            output_string oc (Buffer.contents buf);
            close_out oc
          with Sys_error e -> failf "cannot write journal %s: %s" path e)
        buffers;
      Printf.printf "  journals written to %s.0 .. %s.%d\n" base base (shards - 1));
    (match !telemetry_oc with
    | Some oc -> ( try close_out oc with Sys_error _ -> ())
    | None -> ());
    match !failures with
    | [] ->
      Printf.printf
        "  verification: OK (no lost jobs, %d/%d journals replay clean, consistency ok)\n"
        !replays_clean shards
    | fs ->
      List.iter (fun f -> Printf.eprintf "chaos-serve: FAIL: %s\n" f) (List.rev fs);
      exit 1
  in
  Cmd.v
    (Cmd.info "chaos-serve"
       ~doc:
         "Drive a supervised shard cluster (the same stack as serve --supervise) through a \
          seeded workload while a seeded fault plan kills and revives shards, then audit \
          the wreckage: no job lost or corrupted, every shard journal replays without \
          divergence, the residency directory is consistent. Reports downtime-weighted \
          makespan and per-shard recovery time; exits 1 on any audit failure.")
    Term.(
      const run $ shards $ procs $ horizon $ ops_per_step $ crash_rate $ mttr $ kills
      $ down_for $ evac_budget $ period $ k $ telemetry_out $ alert_rules $ journal_out
      $ seed_arg)

(* ----- replay / explain ----- *)

let replay_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"JOURNAL" ~doc:"Flight-recorder journal file (JSONL or binary, auto-detected).")
  in
  let run file =
    match Replay.run_file file with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | Ok outcome -> print_endline (Replay.summary outcome)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute an engine flight-recorder journal against a fresh engine and verify \
          bit-exact state reconstruction (per-event makespans, every recorded move, and a \
          final batch consistency check). Resumes from the latest snapshot when the \
          journal was compacted. Nonzero exit on any divergence.")
    Term.(const run $ file)

let snapshot_cmd =
  let module Engine = Rebal_online.Engine in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"JOURNAL" ~doc:"Flight-recorder journal file (JSONL or binary, auto-detected).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the snapshot to $(docv) instead of stdout.")
  in
  let run file out =
    match Result.bind (Journal.load_file file) Replay.resume with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | Ok (eng, outcome) ->
      let line = Journal.render_json (Engine.snapshot eng) in
      (match out with
      | None -> print_endline line
      | Some path ->
        let oc = open_out path in
        output_string oc line;
        output_char oc '\n';
        close_out oc);
      Printf.eprintf "snapshot: %d jobs over m=%d, makespan %d (from %d journal events)\n%!"
        outcome.Replay.final_jobs outcome.Replay.m outcome.Replay.final_makespan
        outcome.Replay.events
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Replay a flight-recorder journal (verifying it) and emit the final engine state \
          as one versioned JSON snapshot object.")
    Term.(const run $ file $ out)

let compact_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"JOURNAL" ~doc:"Flight-recorder journal file (JSONL or binary, auto-detected).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the compacted journal to $(docv) instead of rewriting in place.")
  in
  let run file out =
    match Result.bind (Journal.load_file file) Replay.compact with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | Ok (lines, dropped, kept) ->
      let dest = Option.value out ~default:file in
      (* Write-then-rename so an interrupted compaction never destroys
         the only copy of the journal. A binary journal stays binary:
         the compacted lines are re-parsed and re-framed. *)
      let binary_src =
        let ic = open_in_bin file in
        let is_bin =
          match really_input_string ic (String.length Journal.Binary.magic) with
          | head -> head = Journal.Binary.magic
          | exception End_of_file -> false
        in
        close_in ic;
        is_bin
      in
      let tmp = dest ^ ".tmp" in
      let oc = open_out_bin tmp in
      (if binary_src then begin
         match Journal.parse_lines lines with
         | Error msg ->
           Printf.eprintf "error: compacted journal does not re-parse: %s\n" msg;
           exit 1
         | Ok (h, evs) ->
           output_string oc Journal.Binary.magic;
           output_string oc (Journal.Binary.encode_header h);
           List.iter (fun e -> output_string oc (Journal.Binary.encode_event e)) evs
       end
       else
         List.iter
           (fun l ->
             output_string oc l;
             output_char oc '\n')
           lines);
      close_out oc;
      Sys.rename tmp dest;
      Printf.printf "compacted %s: kept %d event(s), dropped %d\n" dest kept dropped
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Compact a flight-recorder journal: truncate history before the latest recorded \
          snapshot (renumbering events), or — if none was recorded — verify-replay the \
          journal and rewrite it as a single snapshot of the final state. 'rebalance serve \
          --journal' and 'rebalance replay' then resume from the snapshot instead of \
          genesis.")
    Term.(const run $ file $ out)

let explain_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"JOURNAL" ~doc:"Flight-recorder journal file (JSONL or binary, auto-detected).")
  in
  let job =
    Arg.(
      value
      & opt (some string) None
      & info [ "job" ] ~docv:"ID" ~doc:"Show the decision history of one job.")
  in
  let reb =
    Arg.(
      value
      & opt (some int) None
      & info [ "rebalance" ] ~docv:"SEQ"
          ~doc:"Show one rebalance decision (by its journal sequence number) in full.")
  in
  let run file job reb =
    match Journal.load_file file with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | Ok parsed -> begin
      let show = function
        | Ok text -> print_string text
        | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1
      in
      match (job, reb) with
      | Some _, Some _ ->
        Printf.eprintf "error: give either --job or --rebalance, not both\n";
        exit 1
      | Some id, None -> show (Replay.explain_job parsed ~id)
      | None, Some seq -> show (Replay.explain_rebalance parsed ~seq)
      | None, None -> print_string (Replay.explain_summary parsed)
    end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Render the decision history recorded in a flight-recorder journal: the whole \
          event stream, one job's life ($(b,--job)), or one rebalance with its per-move \
          provenance ($(b,--rebalance)).")
    Term.(const run $ file $ job $ reb)

(* ----- journal-convert ----- *)

let journal_convert_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"JOURNAL" ~doc:"Flight-recorder journal file (JSONL or binary, auto-detected).")
  in
  let to_ =
    Arg.(
      value
      & opt (some (enum [ ("jsonl", Journal.Jsonl); ("binary", Journal.Binary) ])) None
      & info [ "to" ] ~docv:"FMT"
          ~doc:
            "Target format: $(b,jsonl) or $(b,binary). Default: the opposite of the \
             input's format.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")
  in
  let run file to_ out =
    match Journal.load_file file with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | Ok (h, evs) ->
      let src =
        let ic = open_in_bin file in
        let fmt =
          match really_input_string ic (String.length Journal.Binary.magic) with
          | head -> if head = Journal.Binary.magic then Journal.Binary else Journal.Jsonl
          | exception End_of_file -> Journal.Jsonl
        in
        close_in ic;
        fmt
      in
      let target =
        Option.value to_
          ~default:(match src with Journal.Jsonl -> Journal.Binary | Journal.Binary -> Journal.Jsonl)
      in
      let emit oc =
        match target with
        | Journal.Binary ->
          output_string oc Journal.Binary.magic;
          output_string oc (Journal.Binary.encode_header h);
          List.iter (fun e -> output_string oc (Journal.Binary.encode_event e)) evs
        | Journal.Jsonl ->
          output_string oc (Journal.render_header h);
          output_char oc '\n';
          List.iter
            (fun e ->
              output_string oc (Journal.render_event e);
              output_char oc '\n')
            evs
      in
      let name = function Journal.Jsonl -> "jsonl" | Journal.Binary -> "binary" in
      (match out with
      | None ->
        set_binary_mode_out stdout true;
        emit stdout;
        flush stdout
      | Some path ->
        (* Write-then-rename: converting over the input (or any existing
           file) never leaves a half-written journal behind. *)
        let tmp = path ^ ".tmp" in
        let oc = open_out_bin tmp in
        emit oc;
        close_out oc;
        Sys.rename tmp path);
      Printf.eprintf "converted %s (%s -> %s): %d event(s)\n%!" file (name src)
        (name target) (List.length evs)
  in
  Cmd.v
    (Cmd.info "journal-convert"
       ~doc:
         "Convert a flight-recorder journal between the portable JSONL interchange format \
          and the length-prefixed binary frame format, either direction. The conversion \
          is lossless: sequence numbers, timestamps and every field survive a round trip \
          bit-exactly, so replay verifies the converted journal identically.")
    Term.(const run $ file $ to_ $ out)

(* ----- sweep ----- *)

let sweep_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file.") in
  let target =
    Arg.(value & opt (some int) None & info [ "target" ] ~docv:"T" ~doc:"Also report the cheapest k reaching this makespan.")
  in
  let run file target =
    match read_instance_file file with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | Ok inst ->
      let table =
        Rebal_harness.Table.create ~title:"moves/makespan Pareto frontier (m-partition)"
          ~columns:[ "budget k"; "moves used"; "makespan" ]
      in
      List.iter
        (fun p ->
          Rebal_harness.Table.add_row table
            [
              string_of_int p.Rebal_algo.Sweep.k;
              string_of_int p.Rebal_algo.Sweep.moves;
              string_of_int p.Rebal_algo.Sweep.makespan;
            ])
        (Rebal_algo.Sweep.frontier inst);
      Rebal_harness.Table.print table;
      match target with
      | None -> ()
      | Some t -> begin
        match Rebal_algo.Sweep.cheapest_k_for inst ~target:t with
        | Some k -> Printf.printf "cheapest k reaching makespan <= %d: %d\n" t k
        | None -> Printf.printf "makespan <= %d not reachable by m-partition\n" t
      end
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Print the moves-vs-makespan Pareto frontier of an instance.")
    Term.(const run $ file $ target)

(* ----- process-sim ----- *)

let process_sim_cmd =
  let cpus = Arg.(value & opt int 8 & info [ "cpus" ] ~docv:"M" ~doc:"Number of CPUs.") in
  let rate = Arg.(value & opt float 0.5 & info [ "rate" ] ~docv:"L" ~doc:"Process arrivals per step.") in
  let horizon = Arg.(value & opt int 6000 & info [ "horizon" ] ~docv:"T" ~doc:"Simulated steps.") in
  let period = Arg.(value & opt int 10 & info [ "period" ] ~docv:"P" ~doc:"Steps between rebalances.") in
  let k = Arg.(value & opt int 4 & info [ "k"; "moves" ] ~docv:"K" ~doc:"Per-round migration budget.") in
  let heavy =
    Arg.(value & opt bool true & info [ "heavy-tail" ] ~docv:"BOOL" ~doc:"Pareto(1.1) lifetimes when true, exponential otherwise.")
  in
  let run cpus rate horizon period k heavy seed =
    let module PS = Rebal_sim.Process_sim in
    let lifetime =
      if heavy then PS.Pareto_work { alpha = 1.1; xmin = 1.0 }
      else PS.Exponential_work 5.5
    in
    let table =
      Rebal_harness.Table.create ~title:"process migration simulation"
        ~columns:[ "policy"; "mean slowdown"; "p95"; "imbalance"; "migrations"; "completed" ]
    in
    List.iter
      (fun policy ->
        let r =
          PS.run (Rng.create seed)
            { PS.cpus; arrival_rate = rate; lifetime; horizon; period; policy }
        in
        Rebal_harness.Table.add_row table
          [
            Rebal_sim.Policy.name policy;
            Printf.sprintf "%.3f" r.PS.mean_slowdown;
            Printf.sprintf "%.1f" r.PS.p95_slowdown;
            Printf.sprintf "%.2f" r.PS.mean_backlog_imbalance;
            string_of_int r.PS.migrations;
            string_of_int r.PS.completed;
          ])
      [
        Rebal_sim.Policy.No_rebalance;
        Rebal_sim.Policy.Greedy k;
        Rebal_sim.Policy.M_partition k;
        Rebal_sim.Policy.Full_lpt;
      ];
    Rebal_harness.Table.print table
  in
  Cmd.v
    (Cmd.info "process-sim" ~doc:"Run the process-migration simulation.")
    Term.(const run $ cpus $ rate $ horizon $ period $ k $ heavy $ seed_arg)

let () =
  (* Build provenance rides along in every exposition: a constant-1
     info gauge (version + compiler) plus process uptime. *)
  Metrics.register_build_info ~version ();
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "rebalance" ~version
      ~doc:"Load rebalancing: bounded-migration makespan minimization (SPAA 2003)."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            gen_cmd;
            solve_cmd;
            bounds_cmd;
            simulate_cmd;
            chaos_cmd;
            chaos_serve_cmd;
            sweep_cmd;
            process_sim_cmd;
            profile_cmd;
            serve_cmd;
            loadgen_cmd;
            top_cmd;
            postmortem_cmd;
            replay_cmd;
            snapshot_cmd;
            compact_cmd;
            explain_cmd;
            journal_convert_cmd;
          ]))
