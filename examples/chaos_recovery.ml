(* Rebalancing when the cluster itself misbehaves.

   The webserver_migration example asks whether bounded-move rebalancing
   is worth it when load drifts. This one asks the operational question
   that follows: is it still worth it when servers crash, migrations
   fail, and the load numbers the policy sees are a step old and noisy?

   A fortnight of hourly traffic on 10 servers. Each hour every server
   has a small chance of crashing and stays down half a day on average;
   its sites are evacuated in a hurry (emergency moves). One policy move
   in ten fails after consuming its budget slot, and policies see last
   hour's loads with 10% measurement jitter. The fault plan is seeded, so
   every policy faces exactly the same storm.

   Run with: dune exec examples/chaos_recovery.exe *)

module Traffic = Rebal_sim.Traffic
module Policy = Rebal_sim.Policy
module Fault = Rebal_sim.Fault
module Simulation = Rebal_sim.Simulation
module Table = Rebal_harness.Table
module Rng = Rebal_workloads.Rng

let () =
  let horizon = 336 (* two weeks, hourly *) in
  let servers = 10 in
  let traffic =
    Traffic.create (Rng.create 77) ~sites:200 ~horizon ~zipf_alpha:0.6 ~scale:400
      ~period:24 ~diurnal_depth:0.7 ~noise:0.12 ~flash_prob:0.002 ~flash_mult:6
      ~flash_len:5 ()
  in
  let fault =
    Fault.create ~seed:78 ~servers ~horizon ~crash_rate:0.003 ~mttr:12
      ~migration_fail:0.1 ~lag:1 ~noise:0.1 ()
  in
  let crashes = Fault.crash_events fault in
  Printf.printf
    "two simulated weeks under fire: %d crashes (%s), 10%% failed migrations,\n\
     loads observed 1h late with 10%% jitter\n\n"
    (List.length crashes)
    (String.concat ", "
       (List.map (fun (t, s) -> Printf.sprintf "server %d at h%d" s t) crashes));
  let table =
    Table.create ~title:"resilience comparison"
      ~columns:
        [ "policy"; "mean imb"; "p95 imb"; "dw makespan"; "moves"; "failed"; "emergency"; "mean recovery (h)" ]
  in
  let results =
    List.map
      (fun policy ->
        let r =
          Simulation.run ~fault ~recovery_threshold:1.4 traffic
            { Simulation.servers; period = 6; policy }
        in
        let recovered =
          List.filter_map (fun rc -> rc.Simulation.steps_to_recover) r.Simulation.recoveries
        in
        let mean_recovery =
          match recovered with
          | [] -> "-"
          | xs ->
            Printf.sprintf "%.1f"
              (float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs))
        in
        Table.add_row table
          [
            Policy.name policy;
            Printf.sprintf "%.3f" r.Simulation.mean_imbalance;
            Printf.sprintf "%.3f" r.Simulation.p95_imbalance;
            Printf.sprintf "%.0f" r.Simulation.downtime_weighted_makespan;
            string_of_int r.Simulation.total_moves;
            string_of_int r.Simulation.failed_migrations;
            string_of_int r.Simulation.emergency_moves;
            mean_recovery;
          ];
        (policy, r))
      [
        Policy.No_rebalance;
        Policy.Greedy 8;
        Policy.M_partition 8;
        Policy.Triggered { k = 8; threshold = 1.3 };
        Policy.Full_lpt;
      ]
  in
  Table.print table;
  (* Zoom in on the aftermath of the first crash for the triggered
     policy: the emergency evacuation spike and the rebalancing rounds
     that work the imbalance back down. *)
  match crashes with
  | [] -> print_endline "no crash this seed; try another"
  | (t0, s0) :: _ ->
    let triggered = List.assoc (Policy.Triggered { k = 8; threshold = 1.3 }) results in
    let zoom =
      Table.create
        ~title:(Printf.sprintf "triggered policy around the crash of server %d at h%d" s0 t0)
        ~columns:[ "hour"; "live"; "imbalance"; "policy moves"; "failed"; "emergency" ]
    in
    Array.iter
      (fun s ->
        if s.Simulation.time >= t0 - 2 && s.Simulation.time <= t0 + 10 then
          Table.add_row zoom
            [
              Printf.sprintf "%+d" (s.Simulation.time - t0);
              string_of_int s.Simulation.live_servers;
              Printf.sprintf "%.3f" s.Simulation.imbalance;
              string_of_int s.Simulation.moves;
              string_of_int s.Simulation.failed_moves;
              string_of_int s.Simulation.emergency_moves;
            ])
      triggered.Simulation.steps;
    Table.print zoom
