(* The online engine driven by a synthetic job stream: a cluster of 16
   processors watches jobs arrive, finish and resize for 5000 events,
   with an imbalance-threshold trigger paying for bounded repair passes
   only when the placement has actually degraded. Run with:

     dune exec examples/online_stream.exe *)

module Engine = Rebal_online.Engine
module Rng = Rebal_workloads.Rng

let () =
  let m = 16 in
  let rng = Rng.create 7 in
  let eng =
    Engine.create ~trigger:(Engine.Imbalance_above { threshold = 1.25; k = 24 }) ~m ()
  in
  let live = ref [] in
  let next = ref 0 in
  let fresh () =
    (* Heavy-tailed sizes: mostly small services, a few monsters. *)
    if Rng.int rng 20 = 0 then Rng.int_range rng 400 900 else Rng.int_range rng 5 60
  in
  let events = 5000 in
  Printf.printf "streaming %d events through %d processors (trigger: imbalance > 1.25, k = 24)\n\n"
    events m;
  Printf.printf "%8s %6s %9s %11s %8s %7s\n" "event" "jobs" "makespan" "imbalance" "repairs" "moved";
  for e = 1 to events do
    (match (Rng.int rng 10, !live) with
    | (0 | 1 | 2 | 3), _ | _, [] ->
      let id = Printf.sprintf "svc-%d" !next in
      incr next;
      (match Engine.add_job eng ~id ~size:(fresh ()) with
      | Ok _ -> live := id :: !live
      | Error e -> failwith e)
    | (4 | 5 | 6), ids ->
      let id = List.nth ids (Rng.int rng (List.length ids)) in
      ignore (Engine.resize_job eng ~id ~size:(fresh ()))
    | _, ids ->
      let id = List.nth ids (Rng.int rng (List.length ids)) in
      (match Engine.remove_job eng ~id with
      | Ok _ -> live := List.filter (fun x -> x <> id) !live
      | Error e -> failwith e));
    if e mod 500 = 0 then begin
      let s = Engine.stats eng in
      Printf.printf "%8d %6d %9d %11.3f %8d %7d\n" e s.Engine.jobs s.Engine.makespan
        s.Engine.imbalance s.Engine.auto_rebalances s.Engine.moved
    end
  done;
  let consistent = Engine.check_consistency eng ~k:max_int in
  let s = Engine.stats eng in
  Printf.printf
    "\nfinal: %d jobs, makespan %d, imbalance %.3f after %d events\n\
     repairs: %d (all trigger-fired), %d jobs moved in total\n\
     consistency with batch greedy: %s\n"
    s.Engine.jobs s.Engine.makespan s.Engine.imbalance s.Engine.events s.Engine.rebalances
    s.Engine.moved
    (if consistent then "bit-match" else "MISMATCH")
