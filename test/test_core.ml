(* Tests for the core problem types: instance validation, assignment
   accounting, budgets, lower bounds (including Lemma 1's G1) and the text
   round-trip. *)

module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Budget = Rebal_core.Budget
module Lower_bounds = Rebal_core.Lower_bounds
module Verify = Rebal_core.Verify
module Io = Rebal_core.Io
module Rng = Rebal_workloads.Rng
module Exact = Rebal_algo.Exact

let check = Alcotest.check
let check_int = check Alcotest.int

let simple () =
  Instance.create ~sizes:[| 5; 3; 2; 2 |] ~m:2 [| 0; 0; 1; 0 |]

let test_instance_accessors () =
  let inst = simple () in
  check_int "n" 4 (Instance.n inst);
  check_int "m" 2 (Instance.m inst);
  check_int "total" 12 (Instance.total_size inst);
  check_int "max size" 5 (Instance.max_size inst);
  Alcotest.(check bool) "unit cost" true (Instance.unit_cost inst);
  check (Alcotest.array Alcotest.int) "loads" [| 10; 2 |] (Instance.initial_loads inst);
  check_int "makespan" 10 (Instance.initial_makespan inst)

let test_instance_validation () =
  let raises msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  ignore raises;
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Instance.create ~sizes:[| 0 |] ~m:1 [| 0 |]);
  expect_invalid (fun () -> Instance.create ~sizes:[| 1 |] ~m:0 [| 0 |]);
  expect_invalid (fun () -> Instance.create ~sizes:[| 1 |] ~m:1 [| 1 |]);
  expect_invalid (fun () -> Instance.create ~sizes:[| 1; 2 |] ~m:1 [| 0 |]);
  expect_invalid (fun () -> Instance.create ~costs:[| -1 |] ~sizes:[| 1 |] ~m:1 [| 0 |])

let test_instance_copies_are_fresh () =
  let sizes = [| 4; 4 |] in
  let initial = [| 0; 1 |] in
  let inst = Instance.create ~sizes ~m:2 initial in
  sizes.(0) <- 99;
  initial.(0) <- 1;
  check_int "size unaffected" 4 (Instance.size inst 0);
  check_int "initial unaffected" 0 (Instance.initial inst 0);
  let s = Instance.sizes inst in
  s.(1) <- 77;
  check_int "accessor copy" 4 (Instance.size inst 1)

let test_assignment_accounting () =
  let inst = simple () in
  let a = Assignment.of_array ~m:2 [| 1; 0; 1; 0 |] in
  check (Alcotest.array Alcotest.int) "loads" [| 5; 7 |] (Assignment.loads inst a);
  check_int "makespan" 7 (Assignment.makespan inst a);
  check (Alcotest.list Alcotest.int) "moved" [ 0 ] (Assignment.moved_jobs inst a);
  check_int "moves" 1 (Assignment.moves inst a);
  check_int "cost" 1 (Assignment.relocation_cost inst a);
  Alcotest.(check bool) "within moves 1" true (Budget.within inst a (Budget.Moves 1));
  Alcotest.(check bool) "not within moves 0" false (Budget.within inst a (Budget.Moves 0))

let test_identity_assignment () =
  let inst = simple () in
  let a = Assignment.identity inst in
  check_int "no moves" 0 (Assignment.moves inst a);
  check_int "initial makespan" (Instance.initial_makespan inst) (Assignment.makespan inst a)

let test_lower_bounds_sound () =
  let rng = Rng.create 7 in
  for _ = 1 to 200 do
    let n = Rng.int_range rng 1 9 in
    let m = Rng.int_range rng 1 4 in
    let sizes = Array.init n (fun _ -> Rng.int_range rng 1 20) in
    let initial = Array.init n (fun _ -> Rng.int rng m) in
    let inst = Instance.create ~sizes ~m initial in
    let k = Rng.int_range rng 0 n in
    let opt = Exact.opt_makespan_exn inst ~budget:(Budget.Moves k) in
    Alcotest.(check bool) "avg <= opt" true (Lower_bounds.average inst <= opt);
    Alcotest.(check bool) "max <= opt" true (Lower_bounds.max_size inst <= opt);
    Alcotest.(check bool) "g1 <= opt" true (Lower_bounds.g1 inst ~k <= opt);
    Alcotest.(check bool) "best <= opt" true
      (Lower_bounds.best inst ~budget:(Budget.Moves k) <= opt)
  done

let test_g1_known_value () =
  (* Theorem 1's instance with m = 3: loads are (2,2,2) units + size-3 job
     on processor 0 -> initial loads (5,2,2); with k = 2, removing the
     size-3 job then a unit job leaves max load 2. *)
  let t = Rebal_workloads.Tight.greedy_tight ~m:3 in
  check_int "g1 on tight instance" 2 (Lower_bounds.g1 t.Rebal_workloads.Tight.instance ~k:2)

let test_verify_reports () =
  let inst = simple () in
  let a = Assignment.of_array ~m:2 [| 1; 0; 1; 0 |] in
  (match Verify.check inst a ~budget:(Budget.Moves 1) with
  | Error e -> Alcotest.failf "unexpected error %s" e
  | Ok r ->
    check_int "makespan" 7 r.Verify.makespan;
    Alcotest.(check bool) "budget ok" true r.Verify.budget_ok);
  (match Verify.check inst a ~budget:(Budget.Moves 0) with
  | Error e -> Alcotest.failf "unexpected error %s" e
  | Ok r -> Alcotest.(check bool) "budget blown" false r.Verify.budget_ok);
  let wrong = Assignment.of_array ~m:2 [| 0; 0; 0 |] in
  match Verify.check inst wrong ~budget:(Budget.Moves 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected shape error"

let test_io_roundtrip () =
  let rng = Rng.create 8 in
  for _ = 1 to 100 do
    let n = Rng.int_range rng 1 12 in
    let m = Rng.int_range rng 1 5 in
    let sizes = Array.init n (fun _ -> Rng.int_range rng 1 1000) in
    let costs = Array.init n (fun _ -> Rng.int_range rng 0 50) in
    let initial = Array.init n (fun _ -> Rng.int rng m) in
    let inst = Instance.create ~costs ~sizes ~m initial in
    match Io.instance_of_string (Io.instance_to_string inst) with
    | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
    | Ok inst' ->
      check (Alcotest.array Alcotest.int) "sizes" (Instance.sizes inst) (Instance.sizes inst');
      check (Alcotest.array Alcotest.int) "costs" (Instance.costs inst) (Instance.costs inst');
      check (Alcotest.array Alcotest.int) "initial" (Instance.initial_assignment inst)
        (Instance.initial_assignment inst');
      check_int "m" (Instance.m inst) (Instance.m inst')
  done

let test_io_errors_and_comments () =
  (match Io.instance_of_string "# comment\nprocessors 2\njob 5 1 0 # trailing\n\njob 3 1 1\n" with
  | Ok inst ->
    check_int "n" 2 (Instance.n inst);
    check_int "m" 2 (Instance.m inst)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match Io.instance_of_string bad with
      | Ok _ -> Alcotest.failf "expected parse error for %S" bad
      | Error _ -> ())
    [ "job 1 1 0\n"; "processors x\n"; "processors 2\njob 1 1 5\n"; "processors 2\njob a 1 0\n"; "processors 2\nnoise\n" ]

let test_io_descriptive_errors () =
  (* Malformed files must come back as [Error "line N: ..."] naming the
     offending line — never an exception, never a bare message. *)
  let expect_error ~contains input =
    match Io.instance_of_string input with
    | Ok _ -> Alcotest.failf "expected parse error for %S" input
    | Error msg ->
      let present =
        let lm = String.length msg and lc = String.length contains in
        let found = ref false in
        for i = 0 to lm - lc do
          if String.sub msg i lc = contains then found := true
        done;
        !found
      in
      if not present then
        Alcotest.failf "error %S for %S does not mention %S" msg input contains
  in
  expect_error ~contains:"missing 'processors'" "";
  expect_error ~contains:"missing 'processors'" "# only a comment\n\n";
  expect_error ~contains:"missing 'processors'" "job 4 1 0\n";
  expect_error ~contains:"line 2: job size must be positive, got -5" "processors 2\njob -5 1 0\n";
  expect_error ~contains:"line 2: job size must be positive, got 0" "processors 2\njob 0 1 0\n";
  expect_error ~contains:"line 3: relocation cost must be non-negative" "processors 2\njob 1 1 0\njob 1 -2 0\n";
  expect_error ~contains:"line 2: initial processor 5 out of range for 2 processors"
    "processors 2\njob 1 1 5\n";
  expect_error ~contains:"line 4: initial processor 2 out of range for 2 processors"
    "processors 2\njob 1 1 0\njob 1 1 1\njob 1 1 2\n";
  expect_error ~contains:"line 1: processor count must be >= 1, got 0" "processors 0\n";
  expect_error ~contains:"line 1: bad processor count" "processors x\n";
  expect_error ~contains:"line 2: duplicate 'processors'" "processors 2\nprocessors 3\n";
  expect_error ~contains:"line 1: 'job' line wants" "job 1 1\nprocessors 2\n";
  expect_error ~contains:"line 2: bad job size \"abc\"" "processors 2\njob abc 1 0\n";
  expect_error ~contains:"line 1: unrecognized directive" "frobnicate 2\n";
  (* Truncated mid-line: the tail of a 'job' record is missing. *)
  expect_error ~contains:"line 2: 'job' line wants" "processors 2\njob 7\n"

let test_check_live_placement () =
  let live = [| true; false; true |] in
  let ok = Verify.check_live_placement ~m:3 ~live ~placement:[| 0; 2; 2 |] ~round_moves:1 ~budget:(Some 2) in
  Alcotest.(check bool) "valid step accepted" true (ok = Ok ());
  let expect_err ~live ~placement ~round_moves ~budget =
    match Verify.check_live_placement ~m:3 ~live ~placement ~round_moves ~budget with
    | Ok () -> Alcotest.fail "expected invariant violation"
    | Error _ -> ()
  in
  expect_err ~live ~placement:[| 0; 1 |] ~round_moves:0 ~budget:None;
  expect_err ~live ~placement:[| 0; 3 |] ~round_moves:0 ~budget:None;
  expect_err ~live ~placement:[| -1 |] ~round_moves:0 ~budget:None;
  expect_err ~live ~placement:[| 0 |] ~round_moves:3 ~budget:(Some 2);
  expect_err ~live:[| false; false; false |] ~placement:[||] ~round_moves:0 ~budget:None;
  expect_err ~live:[| true |] ~placement:[||] ~round_moves:0 ~budget:None

let test_assignment_io_roundtrip () =
  let a = Assignment.of_array ~m:3 [| 0; 2; 1; 1 |] in
  match Io.assignment_of_string ~m:3 (Io.assignment_to_string a) with
  | Ok a' -> Alcotest.(check bool) "equal" true (Assignment.equal a a')
  | Error e -> Alcotest.failf "roundtrip failed: %s" e


let test_pretty_printers () =
  check Alcotest.string "budget moves" "moves<=3"
    (Format.asprintf "%a" Budget.pp (Budget.Moves 3));
  check Alcotest.string "budget cost" "cost<=9"
    (Format.asprintf "%a" Budget.pp (Budget.Cost 9));
  let inst = simple () in
  let a = Assignment.of_array ~m:2 [| 1; 0; 1; 0 |] in
  match Verify.check inst a ~budget:(Budget.Moves 1) with
  | Ok r ->
    let s = Format.asprintf "%a" Verify.pp_report r in
    Alcotest.(check bool) "report mentions makespan" true
      (String.length s > 0 && String.sub s 0 9 = "makespan=")
  | Error e -> Alcotest.failf "unexpected error %s" e

let test_check_exn_raises_on_blown_budget () =
  let inst = simple () in
  let a = Assignment.of_array ~m:2 [| 1; 0; 1; 0 |] in
  match Verify.check_exn inst a ~budget:(Budget.Moves 0) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on blown budget"

let () =
  Alcotest.run "rebal_core"
    [
      ( "instance",
        [
          Alcotest.test_case "accessors" `Quick test_instance_accessors;
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "defensive copies" `Quick test_instance_copies_are_fresh;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "accounting" `Quick test_assignment_accounting;
          Alcotest.test_case "identity" `Quick test_identity_assignment;
        ] );
      ( "lower_bounds",
        [
          Alcotest.test_case "sound vs exact" `Quick test_lower_bounds_sound;
          Alcotest.test_case "g1 known value" `Quick test_g1_known_value;
        ] );
      ( "verify",
        [
          Alcotest.test_case "reports" `Quick test_verify_reports;
          Alcotest.test_case "pretty printers" `Quick test_pretty_printers;
          Alcotest.test_case "check_exn on blown budget" `Quick test_check_exn_raises_on_blown_budget;
          Alcotest.test_case "live placement invariant" `Quick test_check_live_placement;
        ] );
      ( "io",
        [
          Alcotest.test_case "instance roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "errors and comments" `Quick test_io_errors_and_comments;
          Alcotest.test_case "descriptive line errors" `Quick test_io_descriptive_errors;
          Alcotest.test_case "assignment roundtrip" `Quick test_assignment_io_roundtrip;
        ] );
    ]
