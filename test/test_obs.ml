(* Tests for the observability layer: metric identity and registry
   scoping, histogram bucketing (property-based), registry merging,
   Prometheus exposition round-tripped through a line parser, span-tree
   nesting, the ring-buffer event log, and the flight-recorder journal
   codec (render/parse round trip, corruption rejection, tail ring). *)

module Metrics = Rebal_obs.Metrics
module Trace = Rebal_obs.Trace
module Control = Rebal_obs.Control
module Expo = Rebal_obs.Expo
module Journal = Rebal_obs.Journal
open QCheck2

(* ----- metric identity and registry scoping ----- *)

let test_counter_identity () =
  let reg = Metrics.Registry.create () in
  Metrics.Registry.with_registry reg @@ fun () ->
  let c1 = Metrics.counter ~labels:[ ("a", "1"); ("b", "2") ] "id_total" in
  let c2 = Metrics.counter ~labels:[ ("b", "2"); ("a", "1") ] "id_total" in
  Metrics.Counter.inc c1;
  Metrics.Counter.inc c2;
  (* Label order is canonicalized, so both handles are the same metric. *)
  Alcotest.(check int) "one series, two increments" 2 (Metrics.Counter.value c1);
  Alcotest.(check int) "series count" 1 (List.length (Metrics.Registry.metrics reg));
  let c3 = Metrics.counter ~labels:[ ("a", "1") ] "id_total" in
  Metrics.Counter.inc c3;
  Alcotest.(check int) "different labels, new series" 2
    (List.length (Metrics.Registry.metrics reg))

let test_kind_mismatch () =
  let reg = Metrics.Registry.create () in
  Metrics.Registry.with_registry reg @@ fun () ->
  ignore (Metrics.counter "clash");
  let raised =
    try
      ignore (Metrics.gauge "clash");
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "kind mismatch rejected" true raised

let test_invalid_name () =
  let raised =
    try
      ignore (Metrics.counter ~registry:(Metrics.Registry.create ()) "9starts_with_digit");
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "invalid name rejected" true raised

let test_with_registry_scoping () =
  let scoped = Metrics.Registry.create () in
  Metrics.Registry.with_registry scoped (fun () ->
      Metrics.Counter.inc (Metrics.counter "scoped_only_total"));
  let names reg =
    List.map (fun (m : Metrics.metric) -> m.Metrics.name) (Metrics.Registry.metrics reg)
  in
  Alcotest.(check bool) "present in scoped registry" true
    (List.mem "scoped_only_total" (names scoped));
  Alcotest.(check bool) "absent from default registry" false
    (List.mem "scoped_only_total" (names Metrics.Registry.default))

let test_negative_counter_add () =
  let reg = Metrics.Registry.create () in
  Metrics.Registry.with_registry reg @@ fun () ->
  let c = Metrics.counter "neg_total" in
  let raised = try Metrics.Counter.add c (-1); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative add rejected" true raised

(* ----- histogram properties (qcheck) ----- *)

(* Integer-valued observations keep float sums exact, so the merge
   property below can compare sums with (=). *)
let obs_gen = Gen.list_size (Gen.int_range 0 200) (Gen.map float_of_int (Gen.int_range 0 40))

let prop_histogram_buckets_sum_to_total =
  Test.make ~count:200 ~name:"histogram bucket counts sum to observations" obs_gen
    (fun xs ->
      let reg = Metrics.Registry.create () in
      Metrics.Registry.with_registry reg @@ fun () ->
      let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0 |] "h_sum" in
      List.iter (Metrics.Histogram.observe h) xs;
      let bucket_total =
        List.fold_left (fun acc (_, c) -> acc + c) 0 (Metrics.Histogram.buckets h)
      in
      bucket_total = List.length xs
      && Metrics.Histogram.observations h = List.length xs
      && Metrics.Histogram.sum h = List.fold_left ( +. ) 0.0 xs)

let prop_merge_equals_sequential =
  Test.make ~count:200 ~name:"merged registries equal sequential observation"
    (Gen.pair obs_gen obs_gen) (fun (xs, ys) ->
      let buckets = [| 1.0; 2.0; 4.0; 8.0; 16.0 |] in
      let observe reg stream =
        Metrics.Registry.with_registry reg (fun () ->
            let h = Metrics.histogram ~buckets "m_hist" in
            let c = Metrics.counter "m_total" in
            List.iter
              (fun x ->
                Metrics.Histogram.observe h x;
                Metrics.Counter.inc c)
              stream)
      in
      let r1 = Metrics.Registry.create () and r2 = Metrics.Registry.create () in
      observe r1 xs;
      observe r2 ys;
      let merged = Metrics.Registry.create () in
      Metrics.merge ~into:merged r1;
      Metrics.merge ~into:merged r2;
      let seq = Metrics.Registry.create () in
      observe seq xs;
      observe seq ys;
      let snapshot reg =
        Metrics.Registry.with_registry reg (fun () ->
            let h = Metrics.histogram ~buckets "m_hist" in
            let c = Metrics.counter "m_total" in
            ( Metrics.Histogram.buckets h,
              Metrics.Histogram.sum h,
              Metrics.Histogram.observations h,
              Metrics.Counter.value c ))
      in
      snapshot merged = snapshot seq)

let prop_merge_bucket_mismatch_rejected =
  Test.make ~count:50 ~name:"merge rejects differing buckets" Gen.unit (fun () ->
      let mk buckets =
        let reg = Metrics.Registry.create () in
        Metrics.Registry.with_registry reg (fun () ->
            ignore (Metrics.histogram ~buckets "mm_hist"));
        reg
      in
      let a = mk [| 1.0; 2.0 |] and b = mk [| 1.0; 3.0 |] in
      try
        Metrics.merge ~into:a b;
        false
      with Invalid_argument _ -> true)

(* ----- Prometheus exposition round trip ----- *)

(* The text-format parser lives in the library now (Expo.parse, the
   inverse the top subcommand consumes); the tests drive it through
   these thin wrappers and qcheck the round trip on hostile labels
   below. *)
let parse_exposition text =
  match Expo.parse text with
  | Ok samples -> samples
  | Error e -> Alcotest.failf "Expo.parse: %s" e

let find_sample samples name labels =
  match Expo.find_sample samples name labels with
  | Some s -> s.Expo.value
  | None ->
    Alcotest.failf "sample %s{%s} not found" name
      (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels))

(* Label values drawn from the characters that can break the text
   format: the escaped set (backslash, quote, newline) plus the
   structural ones (space, comma, equals, braces). Whatever the
   renderer emits, the parser must decode back to the same value. *)
let hostile_label =
  Gen.string_size ~gen:(Gen.oneofl [ '\\'; '"'; '\n'; ' '; ','; '='; '{'; '}'; 'a'; '9' ])
    (Gen.int_range 0 12)

let prop_exposition_round_trip =
  Test.make ~count:300 ~name:"prometheus exposition round-trips hostile labels"
    Gen.(pair hostile_label hostile_label)
    (fun (va, vb) ->
      let reg = Metrics.Registry.create () in
      Metrics.Registry.with_registry reg (fun () ->
          Metrics.Counter.add
            (Metrics.counter ~labels:[ ("a", va); ("b", vb) ] "ht_total")
            3;
          Metrics.Histogram.observe
            (Metrics.histogram ~labels:[ ("a", va) ] ~buckets:[| 1.0 |] "ht_hist")
            0.5);
      match Expo.parse (Expo.prometheus reg) with
      | Error e -> Test.fail_reportf "parse failed: %s" e
      | Ok samples ->
        (match Expo.find_sample samples "ht_total" [ ("b", vb); ("a", va) ] with
        | Some s when s.Expo.value = 3.0 -> ()
        | Some s -> Test.fail_reportf "counter value %f" s.Expo.value
        | None -> Test.fail_reportf "counter lost for %S %S" va vb);
        (* Histogram series gain an [le] label next to the hostile one. *)
        (match Expo.find_sample samples "ht_hist_bucket" [ ("a", va); ("le", "1") ] with
        | Some s when s.Expo.value = 1.0 -> ()
        | _ -> Test.fail_reportf "bucket lost for %S" va);
        true)

let test_prometheus_round_trip () =
  let reg = Metrics.Registry.create () in
  Metrics.Registry.with_registry reg @@ fun () ->
  (* Label values exercising every escape: backslash, quote, newline,
     and an embedded space. *)
  let awkward = [ ("path", "/a b"); ("q", "say \"hi\"\\now\nnext") ] in
  let c = Metrics.counter ~labels:awkward ~help:"round trip" "rt_total" in
  Metrics.Counter.add c 7;
  Metrics.Gauge.set (Metrics.gauge "rt_gauge") 2.5;
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 5.0 |] "rt_hist" in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 1.5; 9.0 ];
  let samples = parse_exposition (Expo.prometheus reg) in
  let sorted_awkward = List.sort compare awkward in
  Alcotest.(check (float 0.0)) "counter" 7.0 (find_sample samples "rt_total" sorted_awkward);
  Alcotest.(check (float 0.0)) "gauge" 2.5 (find_sample samples "rt_gauge" []);
  let bucket le = find_sample samples "rt_hist_bucket" [ ("le", le) ] in
  Alcotest.(check (float 0.0)) "le=1 cumulative" 1.0 (bucket "1");
  Alcotest.(check (float 0.0)) "le=2 cumulative" 2.0 (bucket "2");
  Alcotest.(check (float 0.0)) "le=5 cumulative" 2.0 (bucket "5");
  Alcotest.(check (float 0.0)) "le=+Inf cumulative" 3.0 (bucket "+Inf");
  Alcotest.(check (float 0.0)) "sum" 11.0 (find_sample samples "rt_hist_sum" []);
  Alcotest.(check (float 0.0)) "count" 3.0 (find_sample samples "rt_hist_count" []);
  Alcotest.(check string) "+Inf formatting" "+Inf" (Expo.fmt_le infinity)

let test_json_renders () =
  let reg = Metrics.Registry.create () in
  Metrics.Registry.with_registry reg @@ fun () ->
  Metrics.Counter.inc (Metrics.counter ~labels:[ ("k", "v\"q") ] "j_total");
  ignore (Metrics.histogram "j_hist");
  let out = Expo.json reg in
  Alcotest.(check bool) "object shape" true
    (String.length out > 0 && out.[0] = '{');
  (* The quote in the label value must be escaped, or the output is not
     JSON at all. *)
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "escaped quote" true (contains "v\\\"q" out)

(* ----- span tracing ----- *)

let test_span_nesting () =
  Control.with_enabled true @@ fun () ->
  Trace.reset ();
  let result =
    Trace.with_span "root" ~attrs:[ ("n", Trace.Int 3) ] (fun () ->
        Trace.with_span "first" (fun () -> Trace.add_attr "hit" (Trace.Bool true));
        Trace.with_span "second" (fun () -> ());
        17)
  in
  Alcotest.(check int) "with_span returns f's value" 17 result;
  match Trace.finished () with
  | [ root ] ->
    Alcotest.(check string) "root name" "root" (Trace.name root);
    Alcotest.(check (list string)) "children in start order" [ "first"; "second" ]
      (List.map Trace.name (Trace.children root));
    Alcotest.(check bool) "root attr kept" true
      (List.mem_assoc "n" (Trace.attrs root));
    let first = List.hd (Trace.children root) in
    Alcotest.(check bool) "child attr attached to child" true
      (List.mem_assoc "hit" (Trace.attrs first));
    Alcotest.(check bool) "durations non-negative" true
      (Trace.duration_ns root >= 0L);
    Alcotest.(check bool) "root at least as long as children" true
      (Trace.duration_ns root
      >= List.fold_left (fun acc sp -> Int64.add acc (Trace.duration_ns sp)) 0L
           (Trace.children root))
  | spans -> Alcotest.failf "expected exactly one root, got %d" (List.length spans)

let test_span_disabled_is_noop () =
  Control.with_enabled false @@ fun () ->
  Trace.reset ();
  let r = Trace.with_span "invisible" (fun () -> 5) in
  Alcotest.(check int) "value passes through" 5 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.finished ()))

let test_span_survives_exception () =
  Control.with_enabled true @@ fun () ->
  Trace.reset ();
  (try Trace.with_span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  match Trace.finished () with
  | [ sp ] -> Alcotest.(check string) "span closed on raise" "boom" (Trace.name sp)
  | _ -> Alcotest.fail "span not recorded after exception"

let test_ring_buffer_wrap () =
  Control.with_enabled true @@ fun () ->
  Trace.set_ring_capacity 4;
  Fun.protect ~finally:(fun () -> Trace.set_ring_capacity 1024) @@ fun () ->
  for i = 0 to 5 do
    Trace.event (Printf.sprintf "e%d" i)
  done;
  let names = List.map (fun e -> e.Trace.event_name) (Trace.events ()) in
  Alcotest.(check (list string)) "keeps newest, oldest first" [ "e2"; "e3"; "e4"; "e5" ]
    names

let test_trace_dropped_counter () =
  (* Scoped registry: the wrap counter increments into whatever registry
     is current at overwrite time. *)
  let reg = Metrics.Registry.create () in
  Metrics.Registry.with_registry reg @@ fun () ->
  Control.with_enabled true @@ fun () ->
  Trace.set_ring_capacity 4;
  Fun.protect ~finally:(fun () -> Trace.set_ring_capacity 1024) @@ fun () ->
  for i = 0 to 9 do
    Trace.event (Printf.sprintf "d%d" i)
  done;
  let dropped =
    match
      List.find_opt
        (fun (m : Metrics.metric) ->
          m.Metrics.name = "rebal_trace_dropped_total"
          && m.Metrics.labels = [ ("kind", "event") ])
        (Metrics.Registry.metrics reg)
    with
    | Some { Metrics.kind = Metrics.Counter c; _ } -> Metrics.Counter.value c
    | _ -> 0
  in
  (* 10 events into a 4-slot ring: 6 overwrites. *)
  Alcotest.(check int) "overwrites counted" 6 dropped

(* ----- the flight-recorder journal codec ----- *)

(* Field names must dodge the reserved keys (seq/ts_ns/ev), which emit
   silently skips. *)
let field_name_gen =
  Gen.map (fun s -> "f_" ^ s) (Gen.string_size ~gen:(Gen.char_range 'a' 'z') (Gen.int_range 1 6))

let json_gen =
  let scalar =
    Gen.oneof
      [
        Gen.return Journal.Null;
        Gen.map (fun b -> Journal.Bool b) Gen.bool;
        Gen.map (fun i -> Journal.Int i) (Gen.int_range (-1_000_000) 1_000_000);
        (* Finite floats only: the renderer maps nan/inf to null by design,
           which would not round-trip. Ratios of ints are always finite. *)
        Gen.map
          (fun (a, b) -> Journal.Float (float_of_int a /. float_of_int b))
          (Gen.pair (Gen.int_range (-100_000) 100_000) (Gen.int_range 1 999));
        Gen.map (fun s -> Journal.Str s) (Gen.string_size ~gen:Gen.printable (Gen.int_range 0 12));
      ]
  in
  Gen.oneof
    [
      scalar;
      Gen.map (fun l -> Journal.List l) (Gen.list_size (Gen.int_range 0 4) scalar);
      Gen.map
        (fun ps -> Journal.Obj ps)
        (Gen.list_size (Gen.int_range 0 4) (Gen.pair field_name_gen scalar));
    ]

let journal_events_gen =
  Gen.list_size (Gen.int_range 0 25)
    (Gen.pair
       (Gen.string_size ~gen:(Gen.char_range 'a' 'z') (Gen.int_range 1 8))
       (Gen.list_size (Gen.int_range 0 5) (Gen.pair field_name_gen json_gen)))

let prop_journal_round_trip =
  Test.make ~count:300 ~name:"journal render/parse round trip" journal_events_gen
    (fun events ->
      let buf = Buffer.create 512 in
      let tick = ref 0 in
      let sink =
        Journal.create
          ~clock_ns:(fun () ->
            incr tick;
            Int64.of_int (!tick * 17))
          ~write:(Buffer.add_string buf) ()
      in
      Journal.write_header sink ~journal:"qcheck" [ ("m", Journal.Int 4) ];
      List.iter (fun (kind, fields) -> Journal.emit sink ~kind fields) events;
      match Journal.parse_string (Buffer.contents buf) with
      | Error _ -> false
      | Ok (h, evs) ->
        h.Journal.journal = "qcheck"
        && h.Journal.version = Journal.current_version
        && h.Journal.meta = [ ("m", Journal.Int 4) ]
        && List.length evs = List.length events
        && List.for_all2
             (fun (kind, fields) (ev : Journal.event) ->
               ev.Journal.kind = kind && ev.Journal.fields = fields)
             events evs)

let test_journal_rejects () =
  let expect_err name lines fragment =
    match Journal.parse_lines lines with
    | Ok _ -> Alcotest.failf "%s: expected an error mentioning %S" name fragment
    | Error e ->
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (name ^ ": error is " ^ e) true (contains fragment e)
  in
  let header = {|{"journal":"t","version":1}|} in
  let ev seq = Printf.sprintf {|{"seq":%d,"ts_ns":%d,"ev":"x"}|} seq (seq + 1) in
  expect_err "event before header" [ ev 0 ] "line 1";
  expect_err "malformed JSON" [ header; "{\"seq\":0," ] "line 2";
  expect_err "sequence gap" [ header; ev 0; ev 2 ] "line 3";
  expect_err "wrong seq type"
    [ header; {|{"seq":"zero","ts_ns":1,"ev":"x"}|} ]
    "line 2";
  match Journal.parse_lines [ header; ev 0; ev 1 ] with
  | Ok (_, evs) -> Alcotest.(check int) "clean journal parses" 2 (List.length evs)
  | Error e -> Alcotest.failf "clean journal rejected: %s" e

let test_journal_tail () =
  let sink = Journal.create ~tail_capacity:3 ~clock_ns:(fun () -> 0L) ~write:(fun _ -> ()) () in
  Journal.write_header sink ~journal:"t" [];
  for i = 0 to 5 do
    Journal.emit sink ~kind:"e" [ ("i", Journal.Int i) ]
  done;
  Alcotest.(check int) "events counted" 6 (Journal.events_written sink);
  let tl = Journal.tail sink 3 in
  Alcotest.(check int) "ring keeps tail_capacity lines" 3 (List.length tl);
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "oldest surviving line first" true
    (contains "\"i\":3" (List.nth tl 0));
  Alcotest.(check bool) "newest line last" true (contains "\"i\":5" (List.nth tl 2));
  Alcotest.(check int) "asking for more than capacity" 3
    (List.length (Journal.tail sink 100))

let test_json_value_round_trip () =
  (* The parser is strict: trailing garbage and bare values that are not
     JSON must be rejected with a useful message. *)
  (match Journal.json_of_string "{\"a\": [1, 2.5, \"x\"]} tail" with
  | Error e -> Alcotest.(check bool) ("strict: " ^ e) true (String.length e > 0)
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  (match Journal.json_of_string "{\"a\": [1, 2.5, true, null, \"x\"]}" with
  | Ok v ->
    Alcotest.(check string) "reparse equals render"
      "{\"a\":[1,2.5,true,null,\"x\"]}" (Journal.render_json v)
  | Error e -> Alcotest.failf "valid JSON rejected: %s" e);
  (* Int/float distinction survives: 2 and 2.0 are different values. *)
  match (Journal.json_of_string "2", Journal.json_of_string "2.0") with
  | Ok (Journal.Int 2), Ok (Journal.Float 2.0) -> ()
  | _ -> Alcotest.fail "int/float distinction lost"

(* ----- render tree ----- *)

let test_render_tree () =
  Control.with_enabled true @@ fun () ->
  Trace.reset ();
  Trace.with_span "outer" (fun () -> Trace.with_span "inner" (fun () -> ()));
  match Trace.finished () with
  | [ root ] ->
    let out = Trace.render_tree root in
    let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
    (match lines with
    | [ l1; l2 ] ->
      Alcotest.(check bool) "outer first" true (String.length l1 >= 5 && String.sub l1 0 5 = "outer");
      Alcotest.(check bool) "inner indented" true
        (String.length l2 >= 7 && String.sub l2 0 7 = "  inner")
    | _ -> Alcotest.failf "expected two lines, got %d" (List.length lines))
  | _ -> Alcotest.fail "expected one root"

let () =
  Alcotest.run "rebal_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter identity" `Quick test_counter_identity;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "invalid name" `Quick test_invalid_name;
          Alcotest.test_case "with_registry scoping" `Quick test_with_registry_scoping;
          Alcotest.test_case "negative add" `Quick test_negative_counter_add;
        ] );
      ( "histograms",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_histogram_buckets_sum_to_total;
            prop_merge_equals_sequential;
            prop_merge_bucket_mismatch_rejected;
          ] );
      ( "exposition",
        [
          Alcotest.test_case "prometheus round trip" `Quick test_prometheus_round_trip;
          Alcotest.test_case "json escaping" `Quick test_json_renders;
          QCheck_alcotest.to_alcotest prop_exposition_round_trip;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "disabled is a no-op" `Quick test_span_disabled_is_noop;
          Alcotest.test_case "exception safety" `Quick test_span_survives_exception;
          Alcotest.test_case "ring buffer wrap" `Quick test_ring_buffer_wrap;
          Alcotest.test_case "dropped counter on wrap" `Quick test_trace_dropped_counter;
          Alcotest.test_case "render tree" `Quick test_render_tree;
        ] );
      ( "journal",
        [
          QCheck_alcotest.to_alcotest prop_journal_round_trip;
          Alcotest.test_case "rejects corrupted journals" `Quick test_journal_rejects;
          Alcotest.test_case "tail ring" `Quick test_journal_tail;
          Alcotest.test_case "strict JSON values" `Quick test_json_value_round_trip;
        ] );
    ]
