(* Data-structure tests: heap ordering against List.sort, indexed-heap
   decrease-key behaviour, and the Sorted_jobs binary searches against a
   brute-force reference. *)

module Heap = Rebal_ds.Heap
module Indexed_heap = Rebal_ds.Indexed_heap
module Sorted_jobs = Rebal_ds.Sorted_jobs
module Rng = Rebal_workloads.Rng

module Int_heap = Heap.Make (Int)

let check = Alcotest.check
let check_int = check Alcotest.int

let test_heap_sorts () =
  let rng = Rng.create 1 in
  for _ = 1 to 200 do
    let n = Rng.int_range rng 0 50 in
    let xs = List.init n (fun _ -> Rng.int_range rng (-100) 100) in
    let h = Int_heap.of_list xs in
    check (Alcotest.list Alcotest.int) "heap drains sorted"
      (List.sort compare xs)
      (Int_heap.to_sorted_list h);
    Alcotest.(check bool) "empty after drain" true (Int_heap.is_empty h)
  done

let test_heap_interleaved () =
  let rng = Rng.create 2 in
  let h = Int_heap.create () in
  let reference = ref [] in
  for _ = 1 to 2000 do
    if Rng.bool rng || !reference = [] then begin
      let x = Rng.int_range rng 0 1000 in
      Int_heap.add h x;
      reference := x :: !reference
    end
    else begin
      let expected = List.fold_left min max_int !reference in
      let got = Int_heap.pop_exn h in
      check_int "interleaved min" expected got;
      let removed = ref false in
      reference :=
        List.filter
          (fun v ->
            if v = expected && not !removed then begin
              removed := true;
              false
            end
            else true)
          !reference
    end
  done;
  check_int "sizes agree" (List.length !reference) (Int_heap.length h)

let test_heap_empty_ops () =
  let h = Int_heap.create () in
  Alcotest.(check (option int)) "pop empty" None (Int_heap.pop h);
  Alcotest.(check (option int)) "min empty" None (Int_heap.min h);
  Alcotest.check_raises "pop_exn empty" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Int_heap.pop_exn h))

let test_indexed_heap_updates () =
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    let n = Rng.int_range rng 1 30 in
    let h = Indexed_heap.create n in
    let prio = Array.make n None in
    for _ = 1 to 300 do
      let key = Rng.int rng n in
      match Rng.int rng 3 with
      | 0 ->
        let p = Rng.int_range rng (-50) 50 in
        Indexed_heap.set h key p;
        prio.(key) <- Some p
      | 1 ->
        Indexed_heap.remove h key;
        prio.(key) <- None
      | _ -> begin
        (* Check the minimum against the model. *)
        let expected = ref None in
        for k = 0 to n - 1 do
          match (prio.(k), !expected) with
          | Some p, None -> expected := Some (k, p)
          | Some p, Some (_, bp) when p < bp -> expected := Some (k, p)
          | _ -> ()
        done;
        Alcotest.(check (option (pair int int))) "indexed min" !expected (Indexed_heap.min h)
      end
    done
  done

let test_indexed_heap_pop_order () =
  let h = Indexed_heap.create 5 in
  List.iteri (fun i p -> Indexed_heap.set h i p) [ 7; 3; 9; 3; 1 ];
  let order = ref [] in
  let rec drain () =
    match Indexed_heap.pop_min h with
    | Some (k, _) ->
      order := k :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  (* Priorities 1 < 3 = 3 < 7 < 9, ties by key: 4, 1, 3, 0, 2. *)
  check (Alcotest.list Alcotest.int) "deterministic tie-break" [ 4; 1; 3; 0; 2 ]
    (List.rev !order)

(* Model-based qcheck property: arbitrary set/remove/pop_min sequences
   against a naive association-list model. The online engine leans on
   this structure for every placement decision, so the whole observable
   state (min, length, membership, entries) is compared after every
   operation, not just the extraction order. *)
let prop_indexed_heap_model =
  let open QCheck2 in
  let ops_gen =
    Gen.(
      let* n = int_range 1 20 in
      let* ops =
        list_size (int_range 0 150)
          (oneof
             [
               map2 (fun k p -> `Set (k, p)) (int_range 0 (n - 1)) (int_range (-50) 50);
               map (fun k -> `Remove k) (int_range 0 (n - 1));
               return `Pop_min;
             ])
      in
      return (n, ops))
  in
  Test.make ~name:"indexed heap vs assoc-list model" ~count:300 ops_gen
    (fun (n, ops) ->
      let h = Indexed_heap.create n in
      let model = ref [] in
      let model_min () =
        List.fold_left
          (fun best (k, p) ->
            match best with
            | None -> Some (k, p)
            | Some (bk, bp) -> if p < bp || (p = bp && k < bk) then Some (k, p) else best)
          None !model
      in
      List.for_all
        (fun op ->
          let step_ok =
            match op with
            | `Set (k, p) ->
              Indexed_heap.set h k p;
              model := (k, p) :: List.remove_assoc k !model;
              true
            | `Remove k ->
              Indexed_heap.remove h k;
              model := List.remove_assoc k !model;
              true
            | `Pop_min ->
              let got = Indexed_heap.pop_min h in
              let expected = model_min () in
              (match expected with
              | Some (k, _) -> model := List.remove_assoc k !model
              | None -> ());
              got = expected
          in
          step_ok
          && Indexed_heap.min h = model_min ()
          && Indexed_heap.length h = List.length !model
          && List.for_all (fun (k, p) -> Indexed_heap.priority h k = Some p) !model
          && List.sort compare (Indexed_heap.entries h) = List.sort compare !model)
        ops)

let test_sorted_jobs_structure () =
  let rng = Rng.create 4 in
  for _ = 1 to 200 do
    let q = Rng.int_range rng 0 30 in
    let jobs = Array.init q (fun i -> (i, Rng.int_range rng 1 50)) in
    let v = Sorted_jobs.of_assoc jobs in
    check_int "length" q (Sorted_jobs.length v);
    let total = Array.fold_left (fun acc (_, s) -> acc + s) 0 jobs in
    check_int "total" total (Sorted_jobs.total v);
    for i = 1 to q - 1 do
      Alcotest.(check bool) "descending" true (Sorted_jobs.size v (i - 1) >= Sorted_jobs.size v i)
    done;
    for l = 0 to q do
      let expected = ref 0 in
      for i = 0 to l - 1 do
        expected := !expected + Sorted_jobs.size v i
      done;
      check_int "prefix" !expected (Sorted_jobs.prefix v l);
      check_int "suffix" (total - !expected) (Sorted_jobs.suffix v l)
    done
  done

let test_sorted_jobs_large_count () =
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    let q = Rng.int_range rng 0 25 in
    let jobs = Array.init q (fun i -> (i, Rng.int_range rng 1 40)) in
    let v = Sorted_jobs.of_assoc jobs in
    for t = 0 to 90 do
      let expected =
        Array.fold_left (fun acc (_, s) -> if 2 * s > t then acc + 1 else acc) 0 jobs
      in
      check_int "large_count" expected (Sorted_jobs.large_count v ~threshold:t)
    done
  done

let test_sorted_jobs_min_removals () =
  let rng = Rng.create 6 in
  for _ = 1 to 200 do
    let q = Rng.int_range rng 0 20 in
    let jobs = Array.init q (fun i -> (i, Rng.int_range rng 1 30)) in
    let v = Sorted_jobs.of_assoc jobs in
    let from_ = if q = 0 then 0 else Rng.int rng (q + 1) in
    let cap = Rng.int_range rng 0 200 in
    let r = Sorted_jobs.min_removals_to_cap v ~from_ ~cap in
    (* Brute-force reference: remaining after removing the r largest of
       the suffix must be <= cap, and r-1 removals must not suffice. *)
    let remaining r =
      let total = ref 0 in
      for i = from_ + r to q - 1 do
        total := !total + Sorted_jobs.size v i
      done;
      !total
    in
    Alcotest.(check bool) "feasible" true (remaining r <= cap);
    if r > 0 then Alcotest.(check bool) "minimal" true (remaining (r - 1) > cap)
  done

let () =
  Alcotest.run "rebal_ds"
    [
      ( "heap",
        [
          Alcotest.test_case "drains sorted" `Quick test_heap_sorts;
          Alcotest.test_case "interleaved ops vs model" `Quick test_heap_interleaved;
          Alcotest.test_case "empty-heap operations" `Quick test_heap_empty_ops;
        ] );
      ( "indexed_heap",
        [
          Alcotest.test_case "set/remove/min vs model" `Quick test_indexed_heap_updates;
          Alcotest.test_case "deterministic pop order" `Quick test_indexed_heap_pop_order;
          QCheck_alcotest.to_alcotest prop_indexed_heap_model;
        ] );
      ( "sorted_jobs",
        [
          Alcotest.test_case "prefix/suffix structure" `Quick test_sorted_jobs_structure;
          Alcotest.test_case "large_count" `Quick test_sorted_jobs_large_count;
          Alcotest.test_case "min_removals_to_cap" `Quick test_sorted_jobs_min_removals;
        ] );
    ]
