(* Online engine tests: single-event placement against brute force, the
   consistency-with-batch invariant (the engine's bounded-move repair pass
   must reach exactly the makespan of the batch GREEDY on the materialized
   instance), trigger policies, and a protocol round-trip. *)

module Engine = Rebal_online.Engine
module Protocol = Rebal_online.Protocol
module Replay = Rebal_online.Replay
module Journal = Rebal_obs.Journal
module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Greedy = Rebal_algo.Greedy
module Rng = Rebal_workloads.Rng

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let starts_with p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected engine error: %s" e

let add eng id size = ok (Engine.add_job eng ~id ~size)

(* --- single-event updates ------------------------------------------------ *)

let test_greedy_placement () =
  let rng = Rng.create 42 in
  for _ = 1 to 50 do
    let m = Rng.int_range rng 1 8 in
    let eng = Engine.create ~m () in
    let loads = Array.make m 0 in
    for j = 0 to 40 do
      let size = Rng.int_range rng 1 50 in
      let p, _ = add eng (string_of_int j) size in
      (* Brute-force argmin with smallest-index tie-break. *)
      let best = ref 0 in
      for q = 1 to m - 1 do
        if loads.(q) < loads.(!best) then best := q
      done;
      check_int "least-loaded placement" !best p;
      loads.(p) <- loads.(p) + size;
      check Alcotest.(array int) "loads tracked" loads (Engine.loads eng);
      check_int "makespan = max load" (Array.fold_left max 0 loads) (Engine.makespan eng)
    done
  done

let test_remove_resize () =
  let eng = Engine.create ~m:2 () in
  ignore (add eng "a" 10);
  ignore (add eng "b" 20);
  ignore (add eng "c" 5);
  (* a -> 0, b -> 1, c -> 0. *)
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int)) "find c" (Some (5, 0))
    (Engine.find eng "c");
  let p, _ = ok (Engine.remove_job eng ~id:"a") in
  check_int "a was on 0" 0 p;
  check_int "jobs" 2 (Engine.job_count eng);
  ignore (ok (Engine.resize_job eng ~id:"b" ~size:3));
  check Alcotest.(array int) "loads after remove+resize" [| 5; 3 |] (Engine.loads eng);
  check_int "makespan" 5 (Engine.makespan eng)

let test_errors () =
  let eng = Engine.create ~m:2 () in
  ignore (add eng "a" 10);
  let is_err = function Error _ -> true | Ok _ -> false in
  check_bool "duplicate add" true (is_err (Engine.add_job eng ~id:"a" ~size:5));
  check_bool "non-positive size" true (is_err (Engine.add_job eng ~id:"b" ~size:0));
  check_bool "remove missing" true (is_err (Engine.remove_job eng ~id:"zz"));
  check_bool "resize missing" true (is_err (Engine.resize_job eng ~id:"zz" ~size:4));
  check_bool "resize to zero" true (is_err (Engine.resize_job eng ~id:"a" ~size:0));
  check_int "errors left no trace" 1 (Engine.job_count eng);
  Alcotest.check_raises "negative m" (Invalid_argument "Engine.create: need at least one processor")
    (fun () -> ignore (Engine.create ~m:0 ()))

(* --- the consistency-with-batch invariant -------------------------------- *)

let test_rebalance_matches_batch () =
  let eng = Engine.create ~m:4 () in
  List.iteri (fun i size -> ignore (add eng (Printf.sprintf "j%d" i) size))
    [ 60; 50; 10; 5; 40; 8; 3; 70 ];
  let inst, _ = Engine.to_instance eng in
  let moves = Engine.rebalance eng ~k:max_int in
  let batch = Assignment.makespan inst (Greedy.solve inst ~k:max_int) in
  check_int "makespan bit-matches batch greedy" batch (Engine.makespan eng);
  check_bool "repair reported some moves" true (List.length moves > 0)

let test_check_consistency_is_pure () =
  let eng = Engine.create ~m:3 () in
  List.iteri (fun i size -> ignore (add eng (Printf.sprintf "j%d" i) size))
    [ 9; 14; 3; 3; 21; 7 ];
  let before_loads = Engine.loads eng in
  let before_span = Engine.makespan eng in
  for k = 0 to 7 do
    check_bool "consistent at every k" true (Engine.check_consistency eng ~k)
  done;
  check Alcotest.(array int) "probe did not perturb loads" before_loads (Engine.loads eng);
  check_int "probe did not perturb makespan" before_span (Engine.makespan eng);
  let s = Engine.stats eng in
  check_int "checks counted" 8 s.Engine.consistency_checks;
  check_int "no failures" 0 s.Engine.consistency_failures

(* qcheck: arbitrary event sequences, then a full repair pass, must land
   exactly on the batch GREEDY makespan of the materialized instance. *)
let event_sequence_gen =
  let open QCheck2 in
  Gen.(
    let* m = int_range 1 6 in
    let id = map (fun i -> Printf.sprintf "j%d" i) (int_range 0 14) in
    let* events =
      list_size (int_range 0 60)
        (oneof
           [
             map2 (fun id size -> `Add (id, size)) id (int_range 1 60);
             map (fun id -> `Remove id) id;
             map2 (fun id size -> `Resize (id, size)) id (int_range 1 60);
             map (fun k -> `Rebalance k) (int_range 0 8);
           ])
    in
    let* k = int_range 0 20 in
    return (m, events, k))

let apply_events eng events =
  List.iter
    (fun ev ->
      (* Errors (duplicate adds, missing removes) are part of the stream:
         the engine must reject them without corrupting state. *)
      match ev with
      | `Add (id, size) -> ignore (Engine.add_job eng ~id ~size)
      | `Remove id -> ignore (Engine.remove_job eng ~id)
      | `Resize (id, size) -> ignore (Engine.resize_job eng ~id ~size)
      | `Rebalance k -> ignore (Engine.rebalance eng ~k))
    events

let prop_full_repair_matches_batch =
  QCheck2.Test.make ~name:"after any events, rebalance k=inf bit-matches batch greedy"
    ~count:400 event_sequence_gen
    (fun (m, events, _) ->
      let eng = Engine.create ~m () in
      apply_events eng events;
      let inst, _ = Engine.to_instance eng in
      ignore (Engine.rebalance eng ~k:max_int);
      Engine.makespan eng = Assignment.makespan inst (Greedy.solve inst ~k:max_int))

let prop_bounded_repair_matches_batch =
  QCheck2.Test.make ~name:"bounded repair (any k) bit-matches batch greedy" ~count:400
    event_sequence_gen
    (fun (m, events, k) ->
      let eng = Engine.create ~m () in
      apply_events eng events;
      Engine.check_consistency eng ~k)

let prop_state_matches_materialization =
  QCheck2.Test.make ~name:"engine loads/makespan agree with materialized instance"
    ~count:400 event_sequence_gen
    (fun (m, events, _) ->
      let eng = Engine.create ~m () in
      apply_events eng events;
      let inst, ids = Engine.to_instance eng in
      Instance.n inst = Engine.job_count eng
      && Instance.initial_loads inst = Engine.loads eng
      && Instance.initial_makespan inst = Engine.makespan eng
      && Array.for_all (fun id -> Engine.mem eng id) ids)

(* --- trigger policies ---------------------------------------------------- *)

let test_trigger_event_count () =
  let eng = Engine.create ~trigger:(Engine.Every_events { events = 3; k = 8 }) ~m:2 () in
  let _, auto1 = add eng "a" 10 in
  let _, auto2 = add eng "b" 20 in
  check_bool "no repair before the epoch fills" true (auto1 = [] && auto2 = []);
  check_int "nothing yet" 0 (Engine.stats eng).Engine.auto_rebalances;
  ignore (add eng "c" 30);
  check_int "fires on the third event" 1 (Engine.stats eng).Engine.auto_rebalances;
  ignore (add eng "d" 5);
  ignore (add eng "e" 5);
  check_int "epoch was reset" 1 (Engine.stats eng).Engine.auto_rebalances;
  ignore (add eng "f" 5);
  check_int "fires again" 2 (Engine.stats eng).Engine.auto_rebalances

let test_trigger_imbalance () =
  let eng =
    Engine.create ~trigger:(Engine.Imbalance_above { threshold = 1.4; k = 10 }) ~m:2 ()
  in
  (* One job alone is NOT imbalance: the lower bound is the job itself,
     so the trigger must not thrash on an unfixable placement. *)
  let _, moves0 = add eng "a" 5 in
  check_int "single job: no repair" 0 (Engine.stats eng).Engine.auto_rebalances;
  check_bool "no moves" true (moves0 = []);
  ignore (add eng "b" 5);
  check_int "balanced: no repair" 0 (Engine.stats eng).Engine.auto_rebalances;
  let _, moves = add eng "c" 10 in
  (* Loads (15, 5), bound max(10, 10) = 10: imbalance 1.5 > 1.4 fires;
     repair levels to (10, 10). *)
  check_int "imbalance fired" 1 (Engine.stats eng).Engine.auto_rebalances;
  check_bool "repair moved something" true (moves <> []);
  check_int "levelled" 10 (Engine.makespan eng)

let test_trigger_wall_clock () =
  let now = ref 0.0 in
  let eng =
    Engine.create
      ~trigger:(Engine.Every_seconds { seconds = 10.0; k = 4 })
      ~clock:(fun () -> !now)
      ~m:2 ()
  in
  ignore (add eng "a" 10);
  check_int "too early" 0 (Engine.stats eng).Engine.auto_rebalances;
  now := 11.0;
  ignore (add eng "b" 10);
  check_int "fires after the interval" 1 (Engine.stats eng).Engine.auto_rebalances;
  now := 12.0;
  ignore (add eng "c" 10);
  check_int "interval restarts at the repair" 1 (Engine.stats eng).Engine.auto_rebalances

(* --- the serve protocol -------------------------------------------------- *)

let run_session eng lines =
  List.concat_map (fun l -> fst (Protocol.handle_line (Protocol.Single eng) l)) lines

let test_protocol_round_trip () =
  let eng = Engine.create ~m:2 () in
  let out =
    run_session eng
      [ "ADD a 10"; ""; "# comment"; "add b 20"; "REBALANCE 1"; "REMOVE a"; "RESIZE b 7" ]
  in
  check (Alcotest.list Alcotest.string) "session transcript"
    [
      "PLACED a 0 makespan=10";
      "PLACED b 1 makespan=20";
      "REBALANCED moves=0 makespan=20";
      "REMOVED a 0 makespan=20";
      "RESIZED b 1 makespan=7";
    ]
    out;
  let stats_out = run_session eng [ "STATS" ] in
  check_int "one stats line" 1 (List.length stats_out);
  check_bool "stats line shape" true
    (String.length (List.hd stats_out) > 5
    && String.sub (List.hd stats_out) 0 5 = "STATS");
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let stats = List.hd stats_out in
  check_bool "stats has auto_triggers" true (contains " auto_triggers=0" stats);
  check_bool "stats has last_rebalance_moves" true (contains " last_rebalance_moves=0" stats)

let test_protocol_metrics () =
  (* A scoped registry so the engine's histogram handles, and the gauges
     METRICS exports, do not leak into other tests. *)
  let module Metrics = Rebal_obs.Metrics in
  let reg = Metrics.Registry.create () in
  Metrics.Registry.with_registry reg @@ fun () ->
  let eng = Engine.create ~m:2 () in
  ignore (run_session eng [ "ADD a 10"; "ADD b 20"; "REBALANCE 1" ]);
  let out = run_session eng [ "METRICS" ] in
  check_bool "non-empty reply" true (List.length out > 1);
  check (Alcotest.string) "terminated by # EOF" "# EOF" (List.nth out (List.length out - 1));
  let has_line p =
    List.exists
      (fun l -> String.length l >= String.length p && String.sub l 0 (String.length p) = p)
      out
  in
  check_bool "engine gauge exported" true (has_line "rebal_engine_jobs 2");
  check_bool "engine counter exported" true (has_line "rebal_engine_rebalances_total 1");
  check_bool "moves histogram exported" true (has_line "rebal_engine_moves_per_rebalance_count");
  check_bool "type headers present" true (has_line "# TYPE rebal_engine_jobs gauge");
  (* A second METRICS must re-export, not double-count. *)
  let again = run_session eng [ "METRICS" ] in
  check_bool "idempotent export" true
    (List.exists (fun l -> l = "rebal_engine_rebalances_total 1") again)

let test_protocol_errors_and_verdicts () =
  let eng = Engine.create ~m:2 () in
  let starts_with p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  let err line =
    match Protocol.handle_line (Protocol.Single eng) line with
    | [ msg ], Protocol.Continue -> starts_with "ERR " msg
    | _ -> false
  in
  check_bool "unknown verb" true (err "FROB x");
  check_bool "bad arity" true (err "ADD x");
  check_bool "bad integer" true (err "ADD x lots");
  check_bool "negative k" true (err "REBALANCE -1");
  check_bool "missing job" true (err "REMOVE ghost");
  check_bool "engine untouched by errors" true (Engine.job_count eng = 0);
  (match Protocol.handle_line (Protocol.Single eng) "QUIT" with
  | [ "BYE" ], Protocol.Close -> ()
  | _ -> Alcotest.fail "QUIT must close the session");
  (match Protocol.handle_line (Protocol.Single eng) "SHUTDOWN" with
  | [ "BYE" ], Protocol.Stop -> ()
  | _ -> Alcotest.fail "SHUTDOWN must stop the daemon");
  (* REBALANCE with no argument means an unbounded repair. *)
  match Protocol.parse "rebalance" with
  | Ok (Some (Protocol.Rebalance k)) -> check_bool "default k unbounded" true (k = max_int)
  | _ -> Alcotest.fail "bare REBALANCE must parse"

let test_protocol_auto_moves_stream () =
  let eng = Engine.create ~trigger:(Engine.Every_events { events = 3; k = 8 }) ~m:4 () in
  let out = run_session eng [ "ADD x 50"; "ADD y 10"; "ADD z 60" ] in
  (* The third ADD fires the trigger: its acknowledgement is followed by
     MOVE lines and an auto REBALANCED summary. *)
  let has_prefix p = List.exists (fun l -> String.length l >= String.length p && String.sub l 0 (String.length p) = p) out in
  check_bool "auto repair streamed MOVE lines" true (has_prefix "MOVE ");
  check_bool "auto repair summarised" true (has_prefix "REBALANCED auto ")

(* --- the flight recorder and replay -------------------------------------- *)

(* A deterministic in-memory journal: Buffer sink plus a fake monotonic
   clock, so recordings are byte-stable across runs. *)
let journaled_engine ?trigger m =
  let buf = Buffer.create 512 in
  let tick = ref 0 in
  let sink =
    Journal.create
      ~clock_ns:(fun () ->
        incr tick;
        Int64.of_int (!tick * 1000))
      ~write:(Buffer.add_string buf) ()
  in
  (Engine.create ?trigger ~journal:sink ~m (), buf)

let prop_replay_reconstructs =
  QCheck2.Test.make
    ~name:"journaled session replays to bit-identical state (check_consistency)" ~count:300
    event_sequence_gen
    (fun (m, events, k) ->
      let eng, buf = journaled_engine m in
      apply_events eng events;
      ignore (Engine.rebalance eng ~k);
      ignore (Engine.check_consistency eng ~k:5);
      match Journal.parse_string (Buffer.contents buf) with
      | Error _ -> false
      | Ok j -> begin
        match Replay.run j with
        | Error _ -> false
        | Ok o ->
          o.Replay.final_makespan = Engine.makespan eng
          && o.Replay.final_jobs = Engine.job_count eng
          && o.Replay.m = m
          && o.Replay.consistency_ok
      end)

let prop_replay_deterministic =
  QCheck2.Test.make ~name:"two replays of one journal agree" ~count:100 event_sequence_gen
    (fun (m, events, k) ->
      let eng, buf = journaled_engine m in
      apply_events eng events;
      ignore (Engine.rebalance eng ~k);
      match Journal.parse_string (Buffer.contents buf) with
      | Error _ -> false
      | Ok j -> begin
        match (Replay.run j, Replay.run j) with
        | Ok a, Ok b ->
          Replay.summary a = Replay.summary b
          && a.Replay.final_makespan = b.Replay.final_makespan
          && a.Replay.moves = b.Replay.moves
          && a.Replay.rebalances = b.Replay.rebalances
        | _ -> false
      end)

let test_auto_trigger_session_replays () =
  (* Auto repairs are journaled as rebalance events with auto=true and
     replayed as explicit passes on a Manual engine — the recording, not
     the wall clock, drives the reconstruction. *)
  let eng, buf = journaled_engine ~trigger:(Engine.Every_events { events = 3; k = 2 }) 4 in
  List.iteri
    (fun i size -> ignore (add eng (Printf.sprintf "j%d" i) size))
    [ 60; 50; 10; 5; 40; 8 ];
  (match Journal.parse_string (Buffer.contents buf) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok (_, evs) ->
    check_bool "trigger events recorded" true
      (List.exists (fun (ev : Journal.event) -> ev.Journal.kind = "trigger") evs));
  match Replay.run_file "/nonexistent/journal.jsonl" with
  | Ok _ -> Alcotest.fail "missing file must be an error"
  | Error _ -> begin
    match Replay.run (Result.get_ok (Journal.parse_string (Buffer.contents buf))) with
    | Error e -> Alcotest.failf "replay failed: %s" e
    | Ok o ->
      check_int "makespan reconstructed" (Engine.makespan eng) o.Replay.final_makespan;
      check_int "job count reconstructed" (Engine.job_count eng) o.Replay.final_jobs;
      check_bool "replayed the auto repairs" true (o.Replay.rebalances >= 2);
      check_bool "summary says OK" true (starts_with "replay OK" (Replay.summary o))
  end

let replace_once ~sub ~by s =
  let sl = String.length sub and n = String.length s in
  let rec go i =
    if i + sl > n then s
    else if String.sub s i sl = sub then
      String.sub s 0 i ^ by ^ String.sub s (i + sl) (n - i - sl)
    else go (i + 1)
  in
  go 0

let test_replay_rejects_corruption () =
  let eng, buf = journaled_engine 3 in
  ignore (add eng "a" 10);
  ignore (add eng "b" 20);
  ignore (add eng "c" 5);
  ignore (Engine.rebalance eng ~k:2);
  let text = Buffer.contents buf in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  (* Truncation in the middle: the sequence gap names the first bad line. *)
  let dropped = List.filteri (fun i _ -> i <> 2) lines in
  (match Journal.parse_lines dropped with
  | Ok _ -> Alcotest.fail "sequence gap accepted"
  | Error e ->
    check_bool ("gap names line 3: " ^ e) true (contains "line 3" e);
    check_bool "gap mentions sequence" true (contains "sequence" e));
  (* Malformed JSON on a specific line. *)
  let mangled =
    List.mapi (fun i l -> if i = 1 then String.sub l 0 (String.length l - 3) else l) lines
  in
  (match Journal.parse_lines mangled with
  | Ok _ -> Alcotest.fail "malformed JSON accepted"
  | Error e -> check_bool ("malformed names line 2: " ^ e) true (contains "line 2" e));
  (* A value tamper that parses fine must still fail replay: the recorded
     load_after no longer matches the re-executed engine. *)
  let tampered = replace_once ~sub:{|"size":20|} ~by:{|"size":21|} text in
  check_bool "tamper changed the text" true (tampered <> text);
  match Journal.parse_string tampered with
  | Error e -> Alcotest.failf "tampered journal should still parse: %s" e
  | Ok j -> begin
    match Replay.run j with
    | Ok _ -> Alcotest.fail "tampered journal replayed clean"
    | Error e -> check_bool ("tamper detected: " ^ e) true (contains "diverged" e)
  end

let test_protocol_journal_verb () =
  let bare = Engine.create ~m:2 () in
  (match Protocol.handle_line (Protocol.Single bare) "JOURNAL" with
  | [ msg ], Protocol.Continue ->
    check_bool "ERR without a sink" true (starts_with "ERR no journal" msg)
  | _ -> Alcotest.fail "JOURNAL without sink must ERR");
  let eng, _buf = journaled_engine 2 in
  ignore (run_session eng [ "ADD a 10"; "ADD b 20" ]);
  (match run_session eng [ "JOURNAL 2" ] with
  | [ l1; l2; eof ] ->
    check Alcotest.string "framed by # EOF" "# EOF" eof;
    check_bool "tail is the newest events" true
      (contains {|"id":"a"|} l1 && contains {|"id":"b"|} l2)
  | out -> Alcotest.failf "expected 2 lines + EOF, got %d lines" (List.length out));
  match run_session eng [ "JOURNAL -1" ] with
  | [ msg ] -> check_bool "negative n rejected" true (starts_with "ERR " msg)
  | _ -> Alcotest.fail "JOURNAL -1 must ERR"

(* --- snapshots and compaction -------------------------------------------- *)

let prop_snapshot_roundtrip =
  QCheck2.Test.make ~name:"snapshot |> of_snapshot bit-matches the engine" ~count:300
    event_sequence_gen
    (fun (m, events, k) ->
      let eng = Engine.create ~m () in
      apply_events eng events;
      ignore (Engine.rebalance eng ~k);
      let s = Engine.snapshot eng in
      match Engine.of_snapshot s with
      | Error _ -> false
      | Ok eng' ->
        Engine.loads eng' = Engine.loads eng
        && Engine.makespan eng' = Engine.makespan eng
        && Engine.job_count eng' = Engine.job_count eng
        && Engine.stats eng' = Engine.stats eng
        (* The restored engine must be byte-stable: snapshotting it again
           yields the identical document (job seqs survived, so repair
           tie-breaks will too). *)
        && Journal.render_json (Engine.snapshot eng') = Journal.render_json s
        (* And it must keep behaving identically: the same repair budget
           produces the same moves on both. *)
        && Engine.rebalance eng' ~k = Engine.rebalance eng ~k
        && Engine.check_consistency eng' ~k:max_int)

let prop_compacted_replay_equals_full =
  QCheck2.Test.make ~name:"compacted-journal replay equals full-journal replay" ~count:200
    event_sequence_gen
    (fun (m, events, k) ->
      let eng, buf = journaled_engine m in
      (* Split the stream around a mid-session snapshot, the way a live
         daemon periodically checkpoints. *)
      let half = List.length events / 2 in
      apply_events eng (List.filteri (fun i _ -> i < half) events);
      (match Engine.journal_snapshot eng with Ok _ -> () | Error e -> failwith e);
      apply_events eng (List.filteri (fun i _ -> i >= half) events);
      ignore (Engine.rebalance eng ~k);
      let parsed = Result.get_ok (Journal.parse_string (Buffer.contents buf)) in
      match (Replay.run parsed, Replay.compact parsed) with
      | Ok full, Ok (lines, dropped, kept) -> begin
        match Journal.parse_string (String.concat "\n" lines) with
        | Error _ -> false
        | Ok compacted -> begin
          match Replay.run compacted with
          | Error _ -> false
          | Ok resumed ->
            resumed.Replay.final_makespan = full.Replay.final_makespan
            && resumed.Replay.final_jobs = full.Replay.final_jobs
            && resumed.Replay.consistency_ok && full.Replay.consistency_ok
            && resumed.Replay.resumed
            && resumed.Replay.events = kept
            && full.Replay.events = dropped + kept
            && resumed.Replay.final_makespan = Engine.makespan eng
        end
      end
      | _ -> false)

let test_trigger_rearm_from_header () =
  (* A journal recorded under an auto trigger must not replay as Manual:
     the header's trigger_config is re-armed on the replayed engine. *)
  let trigger = Engine.Every_events { events = 3; k = 2 } in
  let eng, buf = journaled_engine ~trigger 4 in
  List.iteri (fun i size -> ignore (add eng (Printf.sprintf "j%d" i) size)) [ 60; 50; 10; 5 ];
  let parsed = Result.get_ok (Journal.parse_string (Buffer.contents buf)) in
  (match Replay.run parsed with
  | Error e -> Alcotest.failf "replay failed: %s" e
  | Ok o ->
    check_bool "outcome carries the recorded trigger" true (o.Replay.trigger = trigger);
    check_bool "summary mentions the re-arm" true
      (contains "re-armed every_events trigger" (Replay.summary o)));
  match Replay.resume parsed with
  | Error e -> Alcotest.failf "resume failed: %s" e
  | Ok (eng', o) ->
    check_bool "resumed engine is armed" true (Engine.trigger eng' = trigger);
    check_int "resumed engine state matches" o.Replay.final_makespan (Engine.makespan eng');
    (* The re-armed trigger must actually fire on the resumed engine. *)
    ignore (add eng' "n1" 7);
    ignore (add eng' "n2" 9);
    ignore (add eng' "n3" 11);
    check_bool "trigger fires after resume" true
      ((Engine.stats eng').Engine.auto_rebalances >= 1)

let test_protocol_parse_validation () =
  let eng = Engine.create ~m:2 () in
  let err line =
    match Protocol.handle_line (Protocol.Single eng) line with
    | [ msg ], Protocol.Continue -> msg
    | _ -> Alcotest.failf "expected a single ERR for %S" line
  in
  (* Non-positive sizes are rejected at parse time — before the engine
     sees them — and the session line number is in the message. *)
  check_bool "ADD size 0" true (contains "size must be positive" (err "ADD x 0"));
  check_bool "ADD size negative" true (contains "size must be positive" (err "ADD x -5"));
  check_bool "RESIZE size 0" true (contains "size must be positive" (err "RESIZE x 0"));
  check_int "parse errors left no job behind" 0 (Engine.job_count eng);
  (match Protocol.handle_line ~line:7 (Protocol.Single eng) "ADD x 0" with
  | [ msg ], Protocol.Continue ->
    check_bool ("line-numbered: " ^ msg) true (starts_with "ERR line 7: " msg)
  | _ -> Alcotest.fail "expected a line-numbered ERR");
  match Protocol.handle_line ~line:9 (Protocol.Single eng) "ADD ok 5" with
  | [ msg ], Protocol.Continue -> check_bool "success lines are unprefixed" true (starts_with "PLACED" msg)
  | _ -> Alcotest.fail "valid ADD must succeed"

let test_protocol_snapshot_verb () =
  let bare = Engine.create ~m:2 () in
  (match Protocol.handle_line (Protocol.Single bare) "SNAPSHOT" with
  | [ msg ], Protocol.Continue ->
    check_bool "ERR without a sink" true (starts_with "ERR no journal" msg)
  | _ -> Alcotest.fail "SNAPSHOT without sink must ERR");
  let eng, buf = journaled_engine 2 in
  ignore (run_session eng [ "ADD a 10"; "ADD b 20" ]);
  (match run_session eng [ "SNAPSHOT" ] with
  | [ msg ] -> check_bool ("acknowledged: " ^ msg) true (starts_with "SNAPSHOTTED seq=" msg)
  | _ -> Alcotest.fail "SNAPSHOT must answer one line");
  (* The snapshot lands in the journal and compaction collapses to it. *)
  let parsed = Result.get_ok (Journal.parse_string (Buffer.contents buf)) in
  match Replay.compact parsed with
  | Error e -> Alcotest.failf "compact failed: %s" e
  | Ok (lines, dropped, kept) ->
    check_int "both adds dropped" 2 dropped;
    check_int "snapshot kept" 1 kept;
    check_int "header + snapshot" 2 (List.length lines);
    (match Replay.run (Result.get_ok (Journal.parse_string (String.concat "\n" lines))) with
    | Error e -> Alcotest.failf "compacted replay failed: %s" e
    | Ok o ->
      check_bool "resumed from the snapshot" true o.Replay.resumed;
      check_int "state preserved" (Engine.makespan eng) o.Replay.final_makespan)

let () =
  Alcotest.run "rebal_online"
    [
      ( "engine",
        [
          Alcotest.test_case "greedy placement vs brute force" `Quick test_greedy_placement;
          Alcotest.test_case "remove and resize" `Quick test_remove_resize;
          Alcotest.test_case "error cases" `Quick test_errors;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "full repair = batch greedy" `Quick test_rebalance_matches_batch;
          Alcotest.test_case "check_consistency is pure" `Quick test_check_consistency_is_pure;
          QCheck_alcotest.to_alcotest prop_full_repair_matches_batch;
          QCheck_alcotest.to_alcotest prop_bounded_repair_matches_batch;
          QCheck_alcotest.to_alcotest prop_state_matches_materialization;
        ] );
      ( "triggers",
        [
          Alcotest.test_case "event count epoch" `Quick test_trigger_event_count;
          Alcotest.test_case "imbalance threshold" `Quick test_trigger_imbalance;
          Alcotest.test_case "wall clock" `Quick test_trigger_wall_clock;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "round trip" `Quick test_protocol_round_trip;
          Alcotest.test_case "errors and verdicts" `Quick test_protocol_errors_and_verdicts;
          Alcotest.test_case "auto repair streams moves" `Quick test_protocol_auto_moves_stream;
          Alcotest.test_case "metrics exposition" `Quick test_protocol_metrics;
          Alcotest.test_case "journal tail verb" `Quick test_protocol_journal_verb;
        ] );
      ( "flight recorder",
        [
          QCheck_alcotest.to_alcotest prop_replay_reconstructs;
          QCheck_alcotest.to_alcotest prop_replay_deterministic;
          Alcotest.test_case "auto-trigger session replays" `Quick
            test_auto_trigger_session_replays;
          Alcotest.test_case "corruption rejected with line numbers" `Quick
            test_replay_rejects_corruption;
        ] );
      ( "snapshots",
        [
          QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
          QCheck_alcotest.to_alcotest prop_compacted_replay_equals_full;
          Alcotest.test_case "trigger re-armed from header" `Quick
            test_trigger_rearm_from_header;
          Alcotest.test_case "parse-time size validation" `Quick
            test_protocol_parse_validation;
          Alcotest.test_case "SNAPSHOT verb" `Quick test_protocol_snapshot_verb;
        ] );
    ]
