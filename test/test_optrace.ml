(* Cross-domain tracing: well-formedness of assembled span trees under
   concurrent drivers, the slow-op ring's retention contract (driven
   through the injectable clock), and the HTTP scrape endpoint's
   response shapes. *)

open QCheck2
module Optrace = Rebal_obs.Optrace
module Metrics = Rebal_obs.Metrics
module Cluster = Rebal_online.Cluster
module Http = Rebal_net.Http

(* Optrace state is global (knobs, id counters, slow ring) and
   per-domain (span rings); every test runs inside this bracket so the
   suite's tests cannot contaminate one another. *)
let with_tracing ~sample ~slow_ns f =
  Optrace.reset ();
  Optrace.set_sample_every sample;
  Optrace.set_slow_threshold_ns slow_ns;
  Fun.protect
    ~finally:(fun () ->
      Optrace.set_sample_every 0;
      Optrace.set_slow_threshold_ns (-1);
      Optrace.set_clock Rebal_harness.Timer.now_ns;
      Optrace.reset ())
    f

(* ----- the deterministic cross-shard move tree ----- *)

(* One traced op around one two-phase move must assemble into the full
   causal chain: op root -> move -> reserve, the journaled remove on
   the source worker, the journaled add on the destination worker, and
   the directory commit. This is the tree the TRACES verb shows and the
   CI smoke greps for. *)
let test_move_tree () =
  with_tracing ~sample:1 ~slow_ns:(-1) @@ fun () ->
  let c = Cluster.create ~m:4 ~shards:2 ~domains:2 () in
  Fun.protect ~finally:(fun () -> Cluster.shutdown c) @@ fun () ->
  (match Cluster.add_job c ~id:"mv" ~size:10 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "add failed: %s" e);
  let src = match Cluster.shard_of c "mv" with Some s -> s | None -> Alcotest.fail "lost job" in
  let dst = 1 - src in
  (match Optrace.with_op ~verb:"MOVE" (fun () -> Cluster.move c ~id:"mv" ~dst) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "move failed: %s" e);
  let spans = Optrace.recorded () @ Cluster.recorded_spans c in
  let trees = Optrace.assemble spans in
  let root =
    match List.filter (fun (t : Optrace.tree) -> t.span.name = "MOVE") trees with
    | [ t ] -> t
    | l -> Alcotest.failf "expected one MOVE root, got %d" (List.length l)
  in
  let mv =
    match root.Optrace.children with
    | [ m ] when m.Optrace.span.name = "move" -> m
    | _ -> Alcotest.fail "MOVE root should have exactly the move child"
  in
  let kid_names = List.map (fun (t : Optrace.tree) -> t.span.name) mv.Optrace.children in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true (List.mem expected kid_names))
    [ "move.reserve"; "shard.move.remove"; "shard.move.add"; "move.commit" ];
  (* The two legs really ran on the two shards' workers. *)
  let shard_attr name =
    let t = List.find (fun (t : Optrace.tree) -> t.span.name = name) mv.Optrace.children in
    List.assoc "shard" t.Optrace.span.attrs
  in
  Alcotest.(check string) "remove leg on source" (string_of_int src)
    (shard_attr "shard.move.remove");
  Alcotest.(check string) "add leg on destination" (string_of_int dst)
    (shard_attr "shard.move.add");
  (* All one trace, and every span closed. *)
  List.iter
    (fun (sp : Optrace.span) ->
      Alcotest.(check int) "one trace" root.Optrace.span.trace_id sp.trace_id;
      Alcotest.(check bool) "span closed" true (sp.stop_ns >= sp.start_ns))
    spans

(* ----- well-formed trees under concurrent drivers ----- *)

(* Concurrent session threads over D worker domains, every op sampled:
   whatever interleaving happens, the flat records must link up — every
   span id unique, every non-root span's parent recorded in the same
   trace. A context leak between session threads, or a carrier
   mis-threaded through a mailbox, shows up here as a cross-trace
   edge. *)
let prop_trees_well_formed =
  Test.make ~count:4 ~name:"sampled span trees are well-formed for domains in {1,2,8}"
    Gen.(int_range 0 1000)
    (fun seed ->
      List.for_all
        (fun domains ->
          with_tracing ~sample:1 ~slow_ns:(-1) @@ fun () ->
          let c = Cluster.create ~m:16 ~shards:8 ~domains () in
          let threads =
            List.init 4 (fun t ->
                Thread.create
                  (fun () ->
                    let rng = Random.State.make [| seed; domains; t |] in
                    for i = 1 to 25 do
                      let id = Printf.sprintf "t%d.%d" t i in
                      Optrace.with_op ~verb:"ADD" (fun () ->
                          ignore (Cluster.add_job c ~id ~size:(1 + Random.State.int rng 50)));
                      if Random.State.bool rng then
                        Optrace.with_op ~verb:"MOVE" (fun () ->
                            ignore (Cluster.move c ~id ~dst:(Random.State.int rng 8)))
                    done)
                  ())
          in
          List.iter Thread.join threads;
          let spans = Optrace.recorded () @ Cluster.recorded_spans c in
          Cluster.shutdown c;
          let by_id = Hashtbl.create 256 in
          List.iter (fun (sp : Optrace.span) -> Hashtbl.replace by_id sp.span_id sp) spans;
          if Hashtbl.length by_id <> List.length spans then
            Test.fail_reportf "duplicate span ids (%d spans, %d distinct)" (List.length spans)
              (Hashtbl.length by_id);
          List.iter
            (fun (sp : Optrace.span) ->
              if sp.parent_id <> 0 then
                match Hashtbl.find_opt by_id sp.parent_id with
                | None ->
                  Test.fail_reportf "span %d (%s) orphaned: parent %d not recorded" sp.span_id
                    sp.name sp.parent_id
                | Some p ->
                  if p.trace_id <> sp.trace_id then
                    Test.fail_reportf "cross-trace edge: span %d trace %d under parent trace %d"
                      sp.span_id sp.trace_id p.trace_id)
            spans;
          true)
        [ 1; 2; 8 ])

(* ----- the slow-op ring's retention contract ----- *)

(* Durations driven through the injected clock: exactly the ops at or
   over the threshold land in the ring (in order), and — head sampling
   off — each leaves its root span behind for TRACES to show. *)
let prop_slow_ring_retention =
  Test.make ~count:100 ~name:"slow ring retains exactly the ops over the threshold"
    Gen.(list_size (int_range 0 40) (int_range 0 2000))
    (fun durations ->
      with_tracing ~sample:0 ~slow_ns:1000 @@ fun () ->
      let fake = ref 0L in
      Optrace.set_clock (fun () -> !fake);
      List.iter
        (fun d ->
          Optrace.with_op ~verb:(string_of_int d) (fun () ->
              fake := Int64.add !fake (Int64.of_int d)))
        durations;
      let slow = Optrace.slow_ops () in
      let expected = List.filter (fun d -> d >= 1000) durations in
      if List.length slow <> List.length expected then
        Test.fail_reportf "ring holds %d ops, expected %d" (List.length slow)
          (List.length expected);
      List.iter2
        (fun (s : Optrace.slow_op) d ->
          if s.slow_verb <> string_of_int d then
            Test.fail_reportf "order lost: got %s, expected %d" s.slow_verb d;
          if s.slow_duration_ns < 1000L then
            Test.fail_reportf "retained an op of %Ldns, under the threshold" s.slow_duration_ns)
        slow expected;
      (* Unsampled slow ops keep their root span (and only that). *)
      List.length (Optrace.recorded ()) = List.length expected)

(* ----- assembly promotes orphans instead of dropping them ----- *)

let test_orphan_promotion () =
  let sp ~trace_id ~span_id ~parent_id name =
    {
      Optrace.trace_id;
      span_id;
      parent_id;
      name;
      domain = 0;
      start_ns = Int64.of_int span_id;
      stop_ns = Int64.of_int (span_id + 1);
      attrs = [];
    }
  in
  (* Root evicted: the child must surface as a root, not vanish. *)
  let trees = Optrace.assemble [ sp ~trace_id:7 ~span_id:2 ~parent_id:1 "orphan" ] in
  Alcotest.(check int) "orphan promoted" 1 (List.length trees);
  (* Intact parent/child keeps its shape, children in start order. *)
  match
    Optrace.assemble
      [
        sp ~trace_id:7 ~span_id:1 ~parent_id:0 "root";
        sp ~trace_id:7 ~span_id:3 ~parent_id:1 "late";
        sp ~trace_id:7 ~span_id:2 ~parent_id:1 "early";
      ]
  with
  | [ { Optrace.span = { name = "root"; _ }; children = [ a; b ] } ] ->
    Alcotest.(check string) "start order" "early" a.Optrace.span.name;
    Alcotest.(check string) "start order" "late" b.Optrace.span.name
  | _ -> Alcotest.fail "expected one root with two children"

(* ----- the HTTP scrape endpoint ----- *)

let metrics_stub () = "rebal_up 1\n"

let test_http_dispatch () =
  Alcotest.(check bool) "request line recognized" true (Http.is_request "GET /metrics HTTP/1.1");
  Alcotest.(check bool) "protocol verb is not a request" false (Http.is_request "ADD j1 10");
  Alcotest.(check bool) "METRICS is not a request" false (Http.is_request "METRICS")

let test_http_metrics_route () =
  let r = Http.respond ~metrics:metrics_stub "GET /metrics HTTP/1.0" in
  Alcotest.(check int) "status" 200 r.Http.status;
  Alcotest.(check string) "content type" "text/plain; version=0.0.4; charset=utf-8"
    r.Http.content_type;
  Alcotest.(check string) "body is the exposition" (metrics_stub ()) r.Http.body

let test_http_errors () =
  Alcotest.(check int) "unknown path" 404
    (Http.respond ~metrics:metrics_stub "GET /nope HTTP/1.1").Http.status;
  Alcotest.(check int) "non-GET" 405
    (Http.respond ~metrics:metrics_stub "POST /metrics HTTP/1.1").Http.status;
  Alcotest.(check int) "garbage" 400 (Http.respond ~metrics:metrics_stub "GET HTTP/1.1").Http.status

let test_http_render () =
  let r = Http.respond ~metrics:metrics_stub "GET /metrics HTTP/1.0" in
  let out = Http.render r in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "status line" true (contains "HTTP/1.0 200 OK\r\n" out);
  Alcotest.(check bool) "content length" true
    (contains (Printf.sprintf "Content-Length: %d\r\n" (String.length r.Http.body)) out);
  Alcotest.(check bool) "connection close" true (contains "Connection: close\r\n" out);
  Alcotest.(check bool) "blank line before body" true (contains "\r\n\r\nrebal_up 1\n" out)

let () =
  Alcotest.run "optrace"
    [
      ( "trees",
        [
          Alcotest.test_case "cross-shard move tree" `Quick test_move_tree;
          Alcotest.test_case "orphan promotion" `Quick test_orphan_promotion;
          QCheck_alcotest.to_alcotest prop_trees_well_formed;
        ] );
      ("slow ring", [ QCheck_alcotest.to_alcotest prop_slow_ring_retention ]);
      ( "http",
        [
          Alcotest.test_case "dispatch" `Quick test_http_dispatch;
          Alcotest.test_case "metrics route" `Quick test_http_metrics_route;
          Alcotest.test_case "error routes" `Quick test_http_errors;
          Alcotest.test_case "render" `Quick test_http_render;
        ] );
    ]
