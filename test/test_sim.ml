(* Tests for the web-server simulator: traffic trace invariants,
   policy budget compliance inside the loop, conservation of sites, and
   the qualitative claim of the paper's introduction — periodic bounded
   rebalancing keeps imbalance far below never-rebalancing at a fraction
   of full rebalancing's migration volume. *)

module Traffic = Rebal_sim.Traffic
module Policy = Rebal_sim.Policy
module Simulation = Rebal_sim.Simulation
module Rng = Rebal_workloads.Rng

let trace ?(sites = 60) ?(horizon = 96) ?(seed = 7) () =
  Traffic.create (Rng.create seed) ~sites ~horizon ()

let test_traffic_shape () =
  let t = trace () in
  Alcotest.(check int) "sites" 60 (Traffic.sites t);
  Alcotest.(check int) "horizon" 96 (Traffic.horizon t);
  for time = 0 to 95 do
    for site = 0 to 59 do
      Alcotest.(check bool) "positive rate" true (Traffic.rate t ~site ~time >= 1)
    done
  done

let test_traffic_deterministic () =
  let t1 = trace ~seed:5 () and t2 = trace ~seed:5 () in
  for time = 0 to Traffic.horizon t1 - 1 do
    Alcotest.(check (array int)) "same trace" (Traffic.rates_at t1 ~time)
      (Traffic.rates_at t2 ~time)
  done

let test_traffic_diurnal_varies () =
  let t = trace ~sites:200 ~horizon:48 () in
  let t0 = Traffic.total_at t ~time:0 in
  let varies = ref false in
  for time = 1 to 47 do
    if abs (Traffic.total_at t ~time - t0) > t0 / 20 then varies := true
  done;
  Alcotest.(check bool) "total load moves over the day" true !varies

let test_simulation_runs_all_policies () =
  let t = trace () in
  List.iter
    (fun policy ->
      let r = Simulation.run t { Simulation.servers = 6; period = 8; policy } in
      Alcotest.(check int) "steps" 96 (Array.length r.Simulation.steps);
      Alcotest.(check bool) "peak positive" true (r.Simulation.peak_makespan > 0);
      Alcotest.(check bool) "imbalance >= 1" true (r.Simulation.mean_imbalance >= 0.999);
      (* Every site placed on a valid server at the end. *)
      Array.iter
        (fun p -> Alcotest.(check bool) "valid server" true (p >= 0 && p < 6))
        r.Simulation.final_placement)
    [
      Policy.No_rebalance;
      Policy.Greedy 5;
      Policy.M_partition 5;
      Policy.Local_search 5;
      Policy.Full_lpt;
    ]

let test_no_rebalance_never_moves () =
  let t = trace () in
  let r = Simulation.run t { Simulation.servers = 5; period = 4; policy = Policy.No_rebalance } in
  Alcotest.(check int) "zero moves" 0 r.Simulation.total_moves

let test_budget_respected_per_round () =
  let t = trace ~horizon:64 () in
  List.iter
    (fun k ->
      let r = Simulation.run t { Simulation.servers = 6; period = 8; policy = Policy.M_partition k } in
      Array.iter
        (fun s ->
          if s.Simulation.moves > k then
            Alcotest.failf "round moved %d > k=%d" s.Simulation.moves k)
        r.Simulation.steps)
    [ 0; 1; 3; 10 ]

let test_rebalancing_beats_nothing () =
  (* The qualitative Linder–Shah claim: a small move budget keeps mean
     imbalance well below never rebalancing, with far fewer moves than
     full LPT. *)
  (* Mild skew (no indivisible hot site above the average), strong
     diurnal drift: the regime where bounded-move rebalancing matters. *)
  let t =
    Traffic.create (Rng.create 11) ~sites:200 ~horizon:288 ~zipf_alpha:0.5
      ~scale:300 ~diurnal_depth:0.8 ~noise:0.15 ~flash_prob:0.003 ~flash_mult:5
      ~flash_len:8 ()
  in
  let run policy = Simulation.run t { Simulation.servers = 10; period = 6; policy } in
  let none = run Policy.No_rebalance in
  let bounded = run (Policy.M_partition 10) in
  let full = run Policy.Full_lpt in
  Alcotest.(check bool) "bounded clearly beats none" true
    (bounded.Simulation.mean_imbalance < none.Simulation.mean_imbalance *. 0.95);
  Alcotest.(check bool) "bounded is close to full" true
    (bounded.Simulation.mean_imbalance < full.Simulation.mean_imbalance *. 1.10);
  Alcotest.(check bool) "bounded moves a tenth of full" true
    (bounded.Simulation.total_moves * 10 < full.Simulation.total_moves);
  Alcotest.(check bool) "full moves a lot" true (full.Simulation.total_moves > 1000)

let test_period_one_rebalances_every_step () =
  let t = trace ~horizon:20 () in
  let r = Simulation.run t { Simulation.servers = 4; period = 1; policy = Policy.Greedy 2 } in
  (* Moves may occur at every step after the first. *)
  let move_steps =
    Array.fold_left (fun acc s -> if s.Simulation.moves > 0 then acc + 1 else acc) 0 r.Simulation.steps
  in
  Alcotest.(check bool) "some rounds move" true (move_steps > 0)

let test_invalid_config () =
  let t = trace ~horizon:4 () in
  List.iter
    (fun cfg ->
      match Simulation.run t cfg with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad config accepted")
    [
      { Simulation.servers = 0; period = 1; policy = Policy.No_rebalance };
      { Simulation.servers = 3; period = 0; policy = Policy.No_rebalance };
    ]


(* --- policies ------------------------------------------------------------ *)

let test_triggered_threshold_boundary () =
  (* Everything on processor 0: loads [12; 0], imbalance exactly 2.0.
     The trigger condition is a strict >, so a threshold of exactly 2.0
     must not fire; just below it must, and then the answer is exactly
     M-PARTITION's. *)
  let inst =
    Rebal_core.Instance.create ~sizes:[| 5; 5; 1; 1 |] ~m:2 [| 0; 0; 0; 0 |]
  in
  let at threshold = Policy.apply (Policy.Triggered { k = 2; threshold }) inst in
  let moves a = Rebal_core.Assignment.moves inst a in
  Alcotest.(check int) "at the threshold: no rebalance" 0 (moves (at 2.0));
  Alcotest.(check int) "above the threshold: no rebalance" 0 (moves (at 2.01));
  Alcotest.(check bool) "below the threshold: fires" true (moves (at 1.99) > 0);
  Alcotest.(check bool) "fired answer is m-partition's" true
    (Rebal_core.Assignment.equal (at 1.99) (Rebal_algo.M_partition.solve inst ~k:2))

let test_failover_policy () =
  let inst =
    Rebal_core.Instance.create ~sizes:[| 9; 3; 3; 3 |] ~m:3 [| 0; 0; 0; 0 |]
  in
  (* A deadline in the past: the primary always "times out" and the
     fallback answers, counted once per application. *)
  let hair_trigger =
    Policy.Failover { primary = Policy.M_partition 2; fallback = Policy.Greedy 2; deadline = -1.0 }
  in
  let a, fallbacks = Policy.apply_count hair_trigger inst in
  Alcotest.(check int) "fell back" 1 fallbacks;
  Alcotest.(check bool) "fallback answer is greedy's" true
    (Rebal_core.Assignment.equal a (Rebal_algo.Greedy.solve inst ~k:2));
  (* A generous deadline: the primary answers and no fallback fires. *)
  let relaxed =
    Policy.Failover { primary = Policy.M_partition 2; fallback = Policy.Greedy 2; deadline = 60.0 }
  in
  let a, fallbacks = Policy.apply_count relaxed inst in
  Alcotest.(check int) "no fallback" 0 fallbacks;
  Alcotest.(check bool) "primary answer is m-partition's" true
    (Rebal_core.Assignment.equal a (Rebal_algo.M_partition.solve inst ~k:2));
  Alcotest.(check bool) "budget is the looser branch" true
    (Policy.budget hair_trigger = Some 2);
  Alcotest.(check bool) "unbounded branch makes it unbounded" true
    (Policy.budget (Policy.Failover { primary = Policy.Full_lpt; fallback = Policy.Greedy 1; deadline = 1.0 })
     = None)

(* --- fault injection ----------------------------------------------------- *)

module Fault = Rebal_sim.Fault

let heavy_trace ?(sites = 120) ?(horizon = 144) ?(seed = 31) () =
  Traffic.create (Rng.create seed) ~sites ~horizon ~zipf_alpha:1.0 ~scale:800
    ~diurnal_depth:0.6 ~noise:0.15 ~flash_prob:0.003 ~flash_mult:5 ~flash_len:8 ()

let chaos_fault ?(seed = 42) ?(servers = 8) ?(horizon = 144) () =
  Fault.create ~seed ~servers ~horizon ~crash_rate:0.01 ~mttr:10
    ~migration_fail:0.15 ~lag:1 ~noise:0.1 ()

let test_fault_plan_deterministic () =
  let f1 = chaos_fault () and f2 = chaos_fault () in
  Alcotest.(check bool) "same crash events" true
    (Fault.crash_events f1 = Fault.crash_events f2);
  for time = 0 to 143 do
    for server = 0 to 7 do
      Alcotest.(check bool) "same liveness" (Fault.is_live f1 ~server ~time)
        (Fault.is_live f2 ~server ~time)
    done
  done;
  (* Migration-failure draws are pure in (time, job): query order must
     not matter. *)
  let forward = List.init 50 (fun j -> Fault.migration_fails f1 ~time:12 ~job:j) in
  let backward =
    List.rev (List.init 50 (fun j -> Fault.migration_fails f2 ~time:12 ~job:(49 - j)))
  in
  Alcotest.(check (list bool)) "order-independent draws" forward backward

let test_fault_plan_always_a_live_server () =
  let f = Fault.create ~seed:9 ~servers:3 ~horizon:400 ~crash_rate:0.3 ~mttr:50 () in
  for time = 0 to 399 do
    Alcotest.(check bool) "at least one live" true (Fault.live_count f ~m:3 ~time >= 1)
  done;
  Alcotest.(check bool) "crashes actually happen" true (Fault.crash_events f <> [])

let test_zero_fault_plan_reproduces_baseline () =
  let t = trace () in
  let zero = Fault.create ~seed:5 ~servers:6 ~horizon:96 () in
  Alcotest.(check bool) "all-zero knobs is a none plan" true (Fault.is_none zero);
  List.iter
    (fun policy ->
      let cfg = { Simulation.servers = 6; period = 8; policy } in
      let plain = Simulation.run t cfg in
      let faulted = Simulation.run ~fault:zero t cfg in
      Alcotest.(check (float 1e-12)) "mean imbalance equal"
        plain.Simulation.mean_imbalance faulted.Simulation.mean_imbalance;
      Alcotest.(check (float 1e-12)) "p95 equal"
        plain.Simulation.p95_imbalance faulted.Simulation.p95_imbalance;
      Alcotest.(check int) "moves equal" plain.Simulation.total_moves
        faulted.Simulation.total_moves;
      Alcotest.(check int) "peak equal" plain.Simulation.peak_makespan
        faulted.Simulation.peak_makespan;
      Alcotest.(check (array int)) "placement equal" plain.Simulation.final_placement
        faulted.Simulation.final_placement;
      Alcotest.(check int) "no emergency moves" 0 faulted.Simulation.emergency_moves;
      Alcotest.(check int) "no failed migrations" 0 faulted.Simulation.failed_migrations)
    [ Policy.No_rebalance; Policy.Greedy 5; Policy.M_partition 5; Policy.Full_lpt ]

let test_chaos_sweep_invariants () =
  (* The acceptance sweep: five policies on heavy-tailed traffic with
     crashes, failed migrations and stale noisy signals. Simulation.run
     raises Failure if any step breaks the live-placement/budget
     invariant, so completing the run is the assertion; on top we check
     the fault accounting is active and the final placement is live. *)
  let t = heavy_trace () in
  let fault = chaos_fault () in
  Alcotest.(check bool) "plan has crashes" true (Fault.crash_events fault <> []);
  List.iter
    (fun policy ->
      let r = Simulation.run ~fault t { Simulation.servers = 8; period = 6; policy } in
      Alcotest.(check bool) "emergency evacuations happened" true
        (r.Simulation.emergency_moves > 0);
      Array.iteri
        (fun site server ->
          ignore site;
          Alcotest.(check bool) "final placement on a live server" true
            (Fault.is_live fault ~server ~time:143))
        r.Simulation.final_placement;
      Alcotest.(check bool) "one recovery entry per crash time" true
        (List.length r.Simulation.recoveries
        = List.length
            (List.sort_uniq compare (List.map fst (Fault.crash_events fault)))))
    [
      Policy.No_rebalance;
      Policy.Greedy 6;
      Policy.M_partition 6;
      Policy.Triggered { k = 6; threshold = 1.3 };
      Policy.Full_lpt;
    ]

let test_all_migrations_fail () =
  let t = trace () in
  let fault =
    Fault.create ~seed:4 ~servers:6 ~horizon:96 ~migration_fail:1.0 ()
  in
  let r = Simulation.run ~fault t { Simulation.servers = 6; period = 8; policy = Policy.Greedy 5 } in
  Alcotest.(check bool) "moves were attempted" true (r.Simulation.total_moves > 0);
  Alcotest.(check int) "every attempt failed" r.Simulation.total_moves
    r.Simulation.failed_migrations;
  (* Nothing ever actually moved, so the placement is the initial LPT. *)
  let none = Simulation.run t { Simulation.servers = 6; period = 8; policy = Policy.No_rebalance } in
  Alcotest.(check (array int)) "placement pinned" none.Simulation.final_placement
    r.Simulation.final_placement

let test_stale_noisy_signals_only () =
  let t = trace () in
  let fault = Fault.create ~seed:6 ~servers:6 ~horizon:96 ~lag:4 ~noise:0.3 () in
  let r = Simulation.run ~fault t { Simulation.servers = 6; period = 8; policy = Policy.M_partition 5 } in
  Alcotest.(check int) "no crashes, no evacuations" 0 r.Simulation.emergency_moves;
  Alcotest.(check int) "no migration failures" 0 r.Simulation.failed_migrations;
  Alcotest.(check bool) "still rebalances" true (r.Simulation.total_moves > 0);
  (* Stale decisions are still budget-bounded per round (the run would
     have raised otherwise) and the run differs from the exact-signal
     one: the policy acted on different numbers. *)
  let exact = Simulation.run t { Simulation.servers = 6; period = 8; policy = Policy.M_partition 5 } in
  Alcotest.(check bool) "noise changes decisions" true
    (exact.Simulation.final_placement <> r.Simulation.final_placement
    || exact.Simulation.total_moves <> r.Simulation.total_moves
    || exact.Simulation.mean_imbalance <> r.Simulation.mean_imbalance)

let test_failover_in_simulation () =
  let t = trace ~horizon:64 () in
  let policy =
    Policy.Failover { primary = Policy.M_partition 5; fallback = Policy.Greedy 5; deadline = -1.0 }
  in
  let r = Simulation.run t { Simulation.servers = 6; period = 8; policy } in
  (* One fallback per rebalancing round: rounds at t = 8, 16, ..., 56. *)
  Alcotest.(check int) "fell back every round" 7 r.Simulation.fallbacks;
  let greedy = Simulation.run t { Simulation.servers = 6; period = 8; policy = Policy.Greedy 5 } in
  Alcotest.(check (array int)) "behaves as the fallback" greedy.Simulation.final_placement
    r.Simulation.final_placement

(* --- process simulator --------------------------------------------------- *)

module PS = Rebal_sim.Process_sim

let ps_config ?(policy = Policy.No_rebalance) ?(horizon = 800) () =
  {
    PS.cpus = 4;
    arrival_rate = 0.5;
    lifetime = PS.Exponential_work 3.0;
    horizon;
    period = 5;
    policy;
  }

let test_process_sim_basic () =
  let r = PS.run (Rng.create 21) (ps_config ()) in
  Alcotest.(check bool) "some processes completed" true (r.PS.completed > 50);
  Alcotest.(check bool) "slowdown at least 1" true (r.PS.mean_slowdown >= 1.0);
  Alcotest.(check bool) "p95 >= mean-ish" true (r.PS.p95_slowdown >= 1.0);
  Alcotest.(check int) "no policy, no migrations" 0 r.PS.migrations;
  Alcotest.(check bool) "imbalance at least 1" true (r.PS.mean_backlog_imbalance >= 1.0)

let test_process_sim_deterministic () =
  let r1 = PS.run (Rng.create 22) (ps_config ~policy:(Policy.Greedy 2) ()) in
  let r2 = PS.run (Rng.create 22) (ps_config ~policy:(Policy.Greedy 2) ()) in
  Alcotest.(check int) "completed equal" r1.PS.completed r2.PS.completed;
  Alcotest.(check int) "migrations equal" r1.PS.migrations r2.PS.migrations;
  Alcotest.(check (float 1e-12)) "slowdown equal" r1.PS.mean_slowdown r2.PS.mean_slowdown

let test_process_sim_migration_helps () =
  (* Under heavy-tailed lifetimes and visible congestion, migrating with
     a small budget must reduce mean slowdown vs never migrating. *)
  let lifetime = PS.Pareto_work { alpha = 1.1; xmin = 1.0 } in
  let cfg policy =
    { PS.cpus = 8; arrival_rate = 0.5; lifetime; horizon = 4000; period = 10; policy }
  in
  let none = PS.run (Rng.create 23) (cfg Policy.No_rebalance) in
  let greedy = PS.run (Rng.create 23) (cfg (Policy.Greedy 4)) in
  Alcotest.(check bool) "migration reduces slowdown" true
    (greedy.PS.mean_slowdown < none.PS.mean_slowdown);
  Alcotest.(check bool) "migrations happened" true (greedy.PS.migrations > 0)

let test_process_sim_work_conservation () =
  (* completed + residual accounts for every arrival: completed processes
     plus the residual population equals what arrived. Run with a policy
     to exercise migration paths too. *)
  let r = PS.run (Rng.create 24) (ps_config ~policy:(Policy.M_partition 3) ()) in
  Alcotest.(check bool) "counts sane" true (r.PS.completed >= 0 && r.PS.residual >= 0);
  Alcotest.(check bool) "work done" true (r.PS.completed + r.PS.residual > 100)

let test_process_sim_validation () =
  List.iter
    (fun cfg ->
      match PS.run (Rng.create 1) cfg with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad process-sim config accepted")
    [
      { (ps_config ()) with PS.cpus = 0 };
      { (ps_config ()) with PS.horizon = 0 };
      { (ps_config ()) with PS.period = 0 };
      { (ps_config ()) with PS.arrival_rate = 0.0 };
      { (ps_config ()) with PS.lifetime = PS.Exponential_work 0.0 };
      { (ps_config ()) with PS.lifetime = PS.Pareto_work { alpha = 0.0; xmin = 1.0 } };
    ]

let test_process_sim_zero_fault_reproduces_baseline () =
  let zero = Fault.create ~seed:3 ~servers:4 ~horizon:800 () in
  let plain = PS.run (Rng.create 25) (ps_config ~policy:(Policy.Greedy 2) ()) in
  let faulted = PS.run ~fault:zero (Rng.create 25) (ps_config ~policy:(Policy.Greedy 2) ()) in
  Alcotest.(check int) "completed equal" plain.PS.completed faulted.PS.completed;
  Alcotest.(check int) "migrations equal" plain.PS.migrations faulted.PS.migrations;
  Alcotest.(check int) "residual equal" plain.PS.residual faulted.PS.residual;
  Alcotest.(check (float 1e-12)) "slowdown equal" plain.PS.mean_slowdown
    faulted.PS.mean_slowdown;
  Alcotest.(check int) "no emergency moves" 0 faulted.PS.emergency_moves;
  Alcotest.(check int) "no failed migrations" 0 faulted.PS.failed_migrations

let test_process_sim_chaos () =
  (* Crashes plus failed migrations on a heavy-tailed population: the
     per-step invariants (live placement, budget, work conservation)
     raise Failure if broken, and the fault accounting must light up. *)
  let fault =
    Fault.create ~seed:12 ~servers:6 ~horizon:2000 ~crash_rate:0.005 ~mttr:25
      ~migration_fail:0.2 ()
  in
  Alcotest.(check bool) "plan has crashes" true (Fault.crash_events fault <> []);
  let cfg policy =
    {
      PS.cpus = 6;
      arrival_rate = 0.6;
      lifetime = PS.Pareto_work { alpha = 1.1; xmin = 1.0 };
      horizon = 2000;
      period = 10;
      policy;
    }
  in
  List.iter
    (fun policy ->
      let r = PS.run ~fault (Rng.create 26) (cfg policy) in
      Alcotest.(check bool) "processes drained off crashed CPUs" true
        (r.PS.emergency_moves > 0);
      Alcotest.(check bool) "work still completes" true (r.PS.completed > 100);
      if policy <> Policy.No_rebalance then
        Alcotest.(check bool) "some migrations failed" true (r.PS.failed_migrations > 0))
    [ Policy.No_rebalance; Policy.Greedy 3; Policy.M_partition 3; Policy.Full_lpt ]

let test_process_sim_chaos_deterministic () =
  let fault () =
    Fault.create ~seed:13 ~servers:4 ~horizon:800 ~crash_rate:0.01 ~mttr:15
      ~migration_fail:0.3 ()
  in
  let run () = PS.run ~fault:(fault ()) (Rng.create 27) (ps_config ~policy:(Policy.Greedy 2) ()) in
  let r1 = run () and r2 = run () in
  Alcotest.(check int) "completed equal" r1.PS.completed r2.PS.completed;
  Alcotest.(check int) "migrations equal" r1.PS.migrations r2.PS.migrations;
  Alcotest.(check int) "failed equal" r1.PS.failed_migrations r2.PS.failed_migrations;
  Alcotest.(check int) "emergency equal" r1.PS.emergency_moves r2.PS.emergency_moves;
  Alcotest.(check (float 1e-12)) "slowdown equal" r1.PS.mean_slowdown r2.PS.mean_slowdown

let () =
  Alcotest.run "rebal_sim"
    [
      ( "traffic",
        [
          Alcotest.test_case "shape" `Quick test_traffic_shape;
          Alcotest.test_case "deterministic" `Quick test_traffic_deterministic;
          Alcotest.test_case "diurnal variation" `Quick test_traffic_diurnal_varies;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "all policies run" `Quick test_simulation_runs_all_policies;
          Alcotest.test_case "no-rebalance never moves" `Quick test_no_rebalance_never_moves;
          Alcotest.test_case "per-round budget" `Quick test_budget_respected_per_round;
          Alcotest.test_case "rebalancing beats nothing" `Quick test_rebalancing_beats_nothing;
          Alcotest.test_case "period one" `Quick test_period_one_rebalances_every_step;
          Alcotest.test_case "invalid configs" `Quick test_invalid_config;
        ] );
      ( "policies",
        [
          Alcotest.test_case "triggered threshold boundary" `Quick
            test_triggered_threshold_boundary;
          Alcotest.test_case "failover combinator" `Quick test_failover_policy;
        ] );
      ( "fault",
        [
          Alcotest.test_case "plan deterministic" `Quick test_fault_plan_deterministic;
          Alcotest.test_case "always a live server" `Quick
            test_fault_plan_always_a_live_server;
          Alcotest.test_case "zero-fault plan = baseline" `Quick
            test_zero_fault_plan_reproduces_baseline;
          Alcotest.test_case "chaos sweep invariants" `Quick test_chaos_sweep_invariants;
          Alcotest.test_case "all migrations fail" `Quick test_all_migrations_fail;
          Alcotest.test_case "stale noisy signals" `Quick test_stale_noisy_signals_only;
          Alcotest.test_case "failover in simulation" `Quick test_failover_in_simulation;
        ] );
      ( "process_sim",
        [
          Alcotest.test_case "basic run" `Quick test_process_sim_basic;
          Alcotest.test_case "deterministic" `Quick test_process_sim_deterministic;
          Alcotest.test_case "migration helps (heavy tails)" `Quick test_process_sim_migration_helps;
          Alcotest.test_case "work conservation" `Quick test_process_sim_work_conservation;
          Alcotest.test_case "validation" `Quick test_process_sim_validation;
          Alcotest.test_case "zero-fault plan = baseline" `Quick
            test_process_sim_zero_fault_reproduces_baseline;
          Alcotest.test_case "chaos run" `Quick test_process_sim_chaos;
          Alcotest.test_case "chaos deterministic" `Quick
            test_process_sim_chaos_deterministic;
        ] );
    ]
