(* Parallel cluster tests: the qcheck equivalence property (a command
   stream fanned across D worker domains must land in the same state as
   the sequential router, for D ∈ {1, 2, 8}, with every per-shard
   journal individually replayable), mailbox backpressure and close
   semantics, two-phase move crash points, and a genuinely concurrent
   multi-thread driver checked for directory integrity. *)

module Engine = Rebal_online.Engine
module Shard = Rebal_online.Shard
module Cluster = Rebal_online.Cluster
module Mailbox = Rebal_online.Mailbox
module Replay = Rebal_online.Replay
module Journal = Rebal_obs.Journal

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected cluster error: %s" e

(* Deterministic in-memory journals, one per shard: each Buffer and
   fake clock is touched only by its shard's owner domain, which is
   exactly the confinement the cluster promises its sinks. *)
let buffer_journals shards =
  let bufs = Array.init shards (fun _ -> Buffer.create 512) in
  let journal_for i =
    let tick = ref 0 in
    Some
      (Journal.create
         ~clock_ns:(fun () ->
           incr tick;
           Int64.of_int (!tick * 1000))
         ~write:(Buffer.add_string bufs.(i))
         ())
  in
  (bufs, journal_for)

(* The same adversarial stream shape as the shard suite: m >= 8 so an
   8-shard split is constructible. *)
let stream_gen =
  let open QCheck2 in
  Gen.(
    let* m = int_range 8 16 in
    let id = map (fun i -> Printf.sprintf "j%d" i) (int_range 0 24) in
    let* events =
      list_size (int_range 0 60)
        (oneof
           [
             map2 (fun id size -> `Add (id, size)) id (int_range 1 60);
             map (fun id -> `Remove id) id;
             map2 (fun id size -> `Resize (id, size)) id (int_range 1 60);
             map (fun k -> `Rebalance k) (int_range 0 8);
           ])
    in
    let* k = int_range 0 20 in
    return (m, events, k))

let apply_to_shard sh events =
  List.iter
    (fun ev ->
      match ev with
      | `Add (id, size) -> ignore (Shard.add_job sh ~id ~size)
      | `Remove id -> ignore (Shard.remove_job sh ~id)
      | `Resize (id, size) -> ignore (Shard.resize_job sh ~id ~size)
      | `Rebalance k -> ignore (Shard.rebalance sh ~k))
    events

let apply_to_cluster c events =
  List.iter
    (fun ev ->
      match ev with
      | `Add (id, size) -> ignore (Cluster.add_job c ~id ~size)
      | `Remove id -> ignore (Cluster.remove_job c ~id)
      | `Resize (id, size) -> ignore (Cluster.resize_job c ~id ~size)
      | `Rebalance k -> ignore (Cluster.rebalance c ~k))
    events

(* The tentpole property: a quiescent cluster is observationally the
   sequential router, whatever the domain count — same loads, same
   global peak, same directory, same repair decisions — and every
   per-shard journal replays to the engine the worker left behind. *)
let prop_cluster_matches_shard =
  QCheck2.Test.make
    ~name:"cluster = sequential shard router for D in {1,2,8}, journals replayable"
    ~count:40 stream_gen
    (fun (m, events, k) ->
      let shards = 8 in
      let sh = Shard.create ~m ~shards () in
      apply_to_shard sh events;
      let seq_moves = Shard.rebalance sh ~k in
      List.for_all
        (fun domains ->
          let bufs, journal_for = buffer_journals shards in
          let c = Cluster.create ~journal_for ~m ~shards ~domains () in
          apply_to_cluster c events;
          let par_moves = Cluster.rebalance c ~k in
          let state_equal =
            Cluster.loads c = Shard.loads sh
            && Cluster.makespan c = Shard.makespan sh
            && Cluster.job_count c = Shard.job_count sh
            && par_moves = seq_moves
            && Array.for_all2
                 (fun (a : Engine.stats) (b : Engine.stats) ->
                   a.Engine.makespan = b.Engine.makespan
                   && a.Engine.jobs = b.Engine.jobs)
                 (Cluster.shard_stats c) (Shard.shard_stats sh)
            && List.for_all
                 (fun id -> Cluster.shard_of c id = Shard.shard_of sh id)
                 (List.init 25 (Printf.sprintf "j%d"))
            && Cluster.check_consistency c ~k
            && Cluster.check_consistency c ~k:max_int
          in
          Cluster.shutdown c;
          state_equal
          && Array.for_all
               (fun i ->
                 let eng = Cluster.engine c i in
                 match
                   Result.bind
                     (Journal.parse_string (Buffer.contents bufs.(i)))
                     Replay.run
                 with
                 | Error _ -> false
                 | Ok o ->
                   o.Replay.consistency_ok
                   && o.Replay.final_makespan = Engine.makespan eng
                   && o.Replay.final_jobs = Engine.job_count eng)
               (Array.init shards Fun.id))
        [ 1; 2; 8 ])

(* --- mailbox ------------------------------------------------------------- *)

let test_mailbox_backpressure () =
  let mb = Mailbox.create ~capacity:2 in
  check Alcotest.(result unit string) "capacity validated"
    (Error "cap")
    (match Mailbox.create ~capacity:0 with
    | exception Invalid_argument _ -> Error "cap"
    | _ -> Ok ());
  check_int "capacity reported" 2 (Mailbox.capacity mb);
  check_bool "send into space" true (Mailbox.send mb 1);
  check_bool "send fills" true (Mailbox.send mb 2);
  (match Mailbox.try_send mb 3 with
  | `Full -> ()
  | `Sent | `Closed -> Alcotest.fail "full mailbox accepted a third element");
  check_int "length is the fill" 2 (Mailbox.length mb);
  (* A blocked sender parks until the consumer makes room. *)
  let unblocked = ref false in
  let t =
    Thread.create
      (fun () ->
        ignore (Mailbox.send mb 3);
        unblocked := true)
      ()
  in
  Thread.delay 0.02;
  check_bool "sender is parked while full" false !unblocked;
  check Alcotest.(option int) "fifo order" (Some 1) (Mailbox.recv mb);
  Thread.join t;
  check_bool "sender woke after recv" true !unblocked;
  check Alcotest.(option int) "fifo order" (Some 2) (Mailbox.recv mb);
  check Alcotest.(option int) "fifo order" (Some 3) (Mailbox.recv mb)

let test_mailbox_close () =
  let mb = Mailbox.create ~capacity:4 in
  check_bool "accepted before close" true (Mailbox.send mb "a");
  check_bool "accepted before close" true (Mailbox.send mb "b");
  Mailbox.close mb;
  Mailbox.close mb (* idempotent *);
  check_bool "closed" true (Mailbox.is_closed mb);
  check_bool "send refused after close" false (Mailbox.send mb "c");
  (match Mailbox.try_send mb "c" with
  | `Closed -> ()
  | `Sent | `Full -> Alcotest.fail "closed mailbox accepted a send");
  (* Everything accepted before close still drains, then end-of-stream. *)
  check Alcotest.(option string) "drains a" (Some "a") (Mailbox.recv mb);
  check Alcotest.(option string) "drains b" (Some "b") (Mailbox.recv mb);
  check Alcotest.(option string) "end of stream" None (Mailbox.recv mb);
  (* close wakes a sender blocked on a full mailbox. *)
  let full = Mailbox.create ~capacity:1 in
  ignore (Mailbox.send full 0);
  let refused = ref None in
  let t = Thread.create (fun () -> refused := Some (Mailbox.send full 1)) () in
  Thread.delay 0.02;
  Mailbox.close full;
  Thread.join t;
  check Alcotest.(option bool) "blocked sender refused on close" (Some false) !refused

(* --- two-phase moves ----------------------------------------------------- *)

(* Two single-processor shards so residency is unambiguous. *)
let two_shard_cluster () =
  let bufs, journal_for = buffer_journals 2 in
  (Cluster.create ~journal_for ~m:2 ~shards:2 ~domains:2 (), bufs)

let replayable bufs =
  Array.for_all
    (fun (buf : Buffer.t) ->
      match Result.bind (Journal.parse_string (Buffer.contents buf)) Replay.run with
      | Ok o -> o.Replay.consistency_ok
      | Error e -> Alcotest.failf "journal did not replay: %s" e)
    bufs

let test_move_commits () =
  let c, bufs = two_shard_cluster () in
  ignore (ok (Cluster.add_job c ~id:"big" ~size:100));
  let src = Option.get (Cluster.shard_of c "big") in
  let dst = 1 - src in
  let moves = ok (Cluster.move c ~id:"big" ~dst) in
  check_int "one recorded transfer" 1 (List.length moves);
  check Alcotest.(option int) "directory follows the move" (Some dst)
    (Cluster.shard_of c "big");
  check_int "inter_moves counted" 1 (Cluster.stats c).Shard.inter_moves;
  check_bool "consistent after commit" true (Cluster.check_consistency c ~k:8);
  check Alcotest.(result (list unit) string) "move to own shard is a no-op" (Ok [])
    (Result.map (List.map ignore) (Cluster.move c ~id:"big" ~dst));
  Cluster.shutdown c;
  check_bool "both shard journals replay" true (replayable bufs)

let test_move_crash_rolls_back () =
  let c, bufs = two_shard_cluster () in
  ignore (ok (Cluster.add_job c ~id:"big" ~size:100));
  ignore (ok (Cluster.add_job c ~id:"other" ~size:7));
  let src = Option.get (Cluster.shard_of c "big") in
  let before_jobs = Cluster.job_count c and before_peak = Cluster.makespan c in
  (* The crash point: after the journaled remove on the source, before
     the journaled add on the destination. The transfer must roll back
     through the ordinary journaled path, leaving both shard journals
     replayable and the job where it started. *)
  (match Cluster.move c ~on_removed:(fun () -> failwith "injected crash") ~id:"big" ~dst:(1 - src) with
  | Ok _ -> Alcotest.fail "crashed transfer reported success"
  | Error e -> check_bool ("reports the failure: " ^ e) true (String.length e > 0));
  check Alcotest.(option int) "job back on the source shard" (Some src)
    (Cluster.shard_of c "big");
  check_int "no job lost" before_jobs (Cluster.job_count c);
  check_int "load restored" before_peak (Cluster.makespan c);
  check_int "rolled-back transfer not counted" 0 (Cluster.stats c).Shard.inter_moves;
  check_bool "consistent after rollback" true (Cluster.check_consistency c ~k:8);
  (* The id is fully settled: ordinary traffic proceeds. *)
  ignore (ok (Cluster.resize_job c ~id:"big" ~size:50));
  check_int "resize landed after rollback" 50 (fst (Option.get (Cluster.find c "big")));
  check_bool "still consistent" true (Cluster.check_consistency c ~k:8);
  Cluster.shutdown c;
  check_bool "both shard journals replay after the crash" true (replayable bufs)

let test_move_validation () =
  let c, _ = two_shard_cluster () in
  (match Cluster.move c ~id:"ghost" ~dst:1 with
  | Ok _ -> Alcotest.fail "moved a job that does not exist"
  | Error e -> check_bool ("names the job: " ^ e) true (String.length e > 0));
  (match Cluster.move c ~id:"ghost" ~dst:7 with
  | Ok _ -> Alcotest.fail "accepted an out-of-range destination"
  | Error e -> check_bool ("names the shard: " ^ e) true (String.length e > 0));
  Cluster.shutdown c

(* --- concurrency and shutdown -------------------------------------------- *)

let test_concurrent_drivers () =
  let shards = 4 in
  let bufs, journal_for = buffer_journals shards in
  let c = Cluster.create ~journal_for ~m:8 ~shards ~domains:4 () in
  let threads = 8 and per_thread = 150 in
  let survivors = Array.make threads 0 in
  let driver t () =
    (* Private id namespace per thread, so every command is valid and
       the only contention is inside the cluster. *)
    let live = ref [] and n = ref 0 in
    for i = 0 to per_thread - 1 do
      let id = Printf.sprintf "t%d.%d" t i in
      (match i mod 5 with
      | 0 | 1 | 2 ->
        ignore (ok (Cluster.add_job c ~id ~size:(1 + ((t + i) mod 40))));
        live := id :: !live;
        incr n
      | 3 -> (
        match !live with
        | [] -> ()
        | victim :: rest ->
          ignore (ok (Cluster.remove_job c ~id:victim));
          live := rest;
          decr n)
      | _ -> (
        match !live with
        | [] -> ()
        | id :: _ -> ignore (ok (Cluster.resize_job c ~id ~size:(1 + (i mod 40))))));
      if i mod 37 = 0 then ignore (Cluster.rebalance c ~k:3)
    done;
    survivors.(t) <- !n
  in
  let ts = Array.init threads (fun t -> Thread.create (driver t) ()) in
  Array.iter Thread.join ts;
  check_int "no job lost or duplicated under contention"
    (Array.fold_left ( + ) 0 survivors)
    (Cluster.job_count c);
  check_bool "directory and engines agree after the storm" true
    (Cluster.check_consistency c ~k:max_int);
  check_int "snapshot reaches every shard" shards
    (List.length (ok (Cluster.journal_snapshot c)));
  Cluster.shutdown c;
  check_bool "every journal from the concurrent run replays" true (replayable bufs)

let test_shutdown_semantics () =
  let c = Cluster.create ~m:4 ~shards:2 () in
  ignore (ok (Cluster.add_job c ~id:"x" ~size:5));
  Cluster.shutdown c;
  Cluster.shutdown c (* idempotent *);
  (match Cluster.add_job c ~id:"y" ~size:1 with
  | Ok _ -> Alcotest.fail "accepted work after shutdown"
  | Error e -> check Alcotest.string "reports shutdown" "cluster is shut down" e);
  Alcotest.check_raises "inspection raises after shutdown" Cluster.Shut_down (fun () ->
      ignore (Cluster.query c 0 Engine.makespan));
  (* The engines themselves remain readable — the replay-audit path. *)
  check_int "post-shutdown engine access" 1
    (Engine.job_count (Cluster.engine c 0) + Engine.job_count (Cluster.engine c 1))

let test_create_validation () =
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Cluster: need at least one domain") (fun () ->
      ignore (Cluster.create ~m:4 ~shards:2 ~domains:0 ()));
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Cluster.create: need a positive mailbox capacity") (fun () ->
      ignore (Cluster.create ~m:4 ~shards:2 ~mailbox_capacity:0 ()));
  (* Domains clamp to the shard count; uneven splits match Shard. *)
  let c = Cluster.create ~m:7 ~shards:3 ~domains:64 () in
  check_int "domains clamped to shards" 3 (Cluster.domain_count c);
  check_int "offsets partition" 3 (Cluster.offset c 1);
  check_int "offsets partition" 5 (Cluster.offset c 2);
  (match Cluster.journal_snapshot c with
  | Ok _ -> Alcotest.fail "snapshot without journals must fail"
  | Error e -> check_bool "names the missing sinks" true (String.length e > 0));
  Cluster.shutdown c;
  let e0 = Engine.create ~m:1 () and e1 = Engine.create ~m:1 () in
  ignore (Engine.add_job e0 ~id:"x" ~size:5);
  ignore (Engine.add_job e1 ~id:"x" ~size:7);
  match Cluster.of_engines ~shards:2 (fun i -> if i = 0 then e0 else e1) with
  | Ok c ->
    Cluster.shutdown c;
    Alcotest.fail "duplicate residency accepted"
  | Error e -> check_bool ("names the duplicate: " ^ e) true (String.length e > 0)

let () =
  Alcotest.run "rebal_cluster"
    [
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest prop_cluster_matches_shard ] );
      ( "mailbox",
        [
          Alcotest.test_case "backpressure blocks and wakes" `Quick
            test_mailbox_backpressure;
          Alcotest.test_case "close refuses, drains, wakes" `Quick test_mailbox_close;
        ] );
      ( "two-phase moves",
        [
          Alcotest.test_case "commit updates the directory" `Quick test_move_commits;
          Alcotest.test_case "crash between halves rolls back" `Quick
            test_move_crash_rolls_back;
          Alcotest.test_case "validation" `Quick test_move_validation;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "eight threads against four domains" `Quick
            test_concurrent_drivers;
          Alcotest.test_case "shutdown semantics" `Quick test_shutdown_semantics;
          Alcotest.test_case "creation validation" `Quick test_create_validation;
        ] );
    ]
