(* Tests for the continuous-telemetry layer: the time-series store
   (downsampling conservation, multi-resolution windows, oldest-first
   ring eviction, quantile-over-window), the alert rule engine (grammar,
   threshold and burn-rate evaluation, the Pending -> Firing -> Resolved
   state machine checked against a reference automaton), the telemetry
   journal sink, the build-info metric and the HTTP /alerts + /tsdb
   routes. *)

module Metrics = Rebal_obs.Metrics
module Journal = Rebal_obs.Journal
module Tsdb = Rebal_obs.Tsdb
module Alerts = Rebal_obs.Alerts
module Http = Rebal_net.Http
open QCheck2

let sec_ns = 1_000_000_000L

(* A store over a private registry with an injected 1 Hz clock: [tick]
   advances one second and takes one sample. *)
let make_store ?(raw = 6) ?(mid = 6) ?(coarse = 600) () =
  let reg = Metrics.Registry.create () in
  let now = ref 0L in
  let tsdb =
    Tsdb.create ~raw_capacity:raw ~mid_capacity:mid ~coarse_capacity:coarse
      ~clock_ns:(fun () -> !now)
      ~source:(fun () -> Metrics.Registry.metrics reg)
      ()
  in
  let tick () =
    now := Int64.add !now sec_ns;
    Tsdb.sample tsdb
  in
  (reg, tsdb, tick)

(* Sample k of these properties is taken at k seconds, so a point's
   timestamp names the newest raw sample merged into it and
   [at_sec p - p.samples + 1 .. at_sec p] is the block of raw samples
   it aggregates. *)
let at_sec p = p.Tsdb.at_ns / 1_000_000_000

(* The multi-resolution view promises disjoint blocks in time order:
   no raw sample is ever counted twice, whatever tier it is read
   from. *)
let check_tiling pts =
  if pts = [] then Test.fail_report "no points retained";
  let rec go = function
    | a :: (b :: _ as rest) ->
      if at_sec b - b.Tsdb.samples < at_sec a then
        Test.fail_reportf "blocks overlap: ..%d and %d-wide ..%d" (at_sec a)
          b.Tsdb.samples (at_sec b);
      go rest
    | _ -> ()
  in
  go pts

(* ----- downsampling conserves counter totals ----- *)

(* Tiny raw/mid rings force the full-window read through all three
   tiers. A block's [last] must be the exact cumulative counter at its
   end and its [min] the exact value at its start — aggregation loses
   no increments — so window deltas telescope exactly, both over the
   whole downsampled history and over a short raw-only window. *)
let prop_downsampling_conserves_counter =
  Test.make ~count:100 ~name:"counter deltas survive downsampling exactly"
    Gen.(list_size (int_range 20 400) (int_range 0 50))
    (fun increments ->
      let reg, tsdb, tick = make_store ~raw:10 ~mid:6 () in
      let c = Metrics.counter ~registry:reg "t_events_total" in
      tick ();
      List.iter
        (fun n ->
          Metrics.Counter.add c n;
          tick ())
        increments;
      let n = List.length increments in
      (* [value.(k)] = counter value captured by the sample at k
         seconds (the k-th sample; the first predates all increments). *)
      let value = Array.make (n + 2) 0 in
      List.iteri (fun i inc -> value.(i + 2) <- value.(i + 1) + inc) increments;
      let total = value.(n + 1) in
      let window_s = float_of_int (n + 10) in
      let pts = Tsdb.points tsdb ~window_s "t_events_total" in
      check_tiling pts;
      List.iter
        (fun p ->
          let k = at_sec p in
          if p.Tsdb.last <> float_of_int value.(k) then
            Test.fail_reportf "block ending at %ds: last=%g, counter was %d" k
              p.Tsdb.last value.(k);
          if p.Tsdb.min <> float_of_int value.(k - p.Tsdb.samples + 1) then
            Test.fail_reportf "block ending at %ds: min=%g, start value %d" k p.Tsdb.min
              value.(k - p.Tsdb.samples + 1))
        pts;
      (match Tsdb.window tsdb ~window_s "t_events_total" with
      | None -> Test.fail_report "no window stats for a sampled series"
      | Some st ->
        if st.Tsdb.s_last <> float_of_int total then
          Test.fail_reportf "window last %g <> final total %d" st.Tsdb.s_last total;
        let first = at_sec (List.hd pts) in
        if st.Tsdb.s_delta <> float_of_int (total - value.(first)) then
          Test.fail_reportf "window delta %g <> %d" st.Tsdb.s_delta
            (total - value.(first)));
      (* A window inside the raw ring is gap-free: its delta is exactly
         the increments applied during it. *)
      match Tsdb.eval tsdb Tsdb.Delta ~window_s:5.0 "t_events_total" with
      | Some d -> d = float_of_int (total - value.(n - 4))
      | None -> false)

(* A window within the raw ring's reach counts every sample exactly
   once. *)
let prop_raw_window_counts_every_sample_once =
  Test.make ~count:100 ~name:"raw-window reads count every sample once"
    Gen.(int_range 12 400)
    (fun n ->
      let reg, tsdb, tick = make_store ~raw:10 () in
      let g = Metrics.gauge ~registry:reg "t_level" in
      for i = 1 to n do
        Metrics.Gauge.set g (float_of_int i);
        tick ()
      done;
      let pts = Tsdb.points tsdb ~window_s:9.0 "t_level" in
      check_tiling pts;
      List.length pts = 10
      && List.for_all (fun p -> p.Tsdb.samples = 1) pts
      && List.fold_left (fun acc p -> acc + p.Tsdb.samples) 0 pts = 10)

(* ----- ring eviction is oldest-first ----- *)

(* Identity series: sample k carries gauge = k, so every retained
   point must satisfy last = at_sec and min = at_sec - samples + 1 —
   any reordering, corruption or newest-first eviction breaks the
   identity. The newest sample is always retained; only the oldest
   history falls off the coarse ring (4 blocks of 60 samples here, so
   nothing older than 300 samples can survive, and nothing newer than
   the rings' total reach may be missing entirely). *)
let prop_ring_eviction_oldest_first =
  Test.make ~count:60 ~name:"ring eviction drops oldest points first"
    Gen.(int_range 1 1200)
    (fun n ->
      let reg, tsdb, tick = make_store ~raw:4 ~mid:4 ~coarse:4 () in
      let g = Metrics.gauge ~registry:reg "t_seq" in
      for i = 1 to n do
        Metrics.Gauge.set g (float_of_int i);
        tick ()
      done;
      let pts = Tsdb.points tsdb ~window_s:(float_of_int (n + 10)) "t_seq" in
      check_tiling pts;
      List.iter
        (fun p ->
          let k = at_sec p in
          if p.Tsdb.last <> float_of_int k then
            Test.fail_reportf "point at %ds: last=%g, expected %d" k p.Tsdb.last k;
          if p.Tsdb.min <> float_of_int (k - p.Tsdb.samples + 1) then
            Test.fail_reportf "point at %ds: min=%g with %d samples" k p.Tsdb.min
              p.Tsdb.samples)
        pts;
      let oldest = List.hd pts in
      if n > 300 && at_sec oldest - oldest.Tsdb.samples + 1 <= n - 300 then
        Test.fail_reportf "sample %d outlived the coarse ring (newest is %d)"
          (at_sec oldest - oldest.Tsdb.samples + 1)
          n;
      let newest = List.nth pts (List.length pts - 1) in
      newest.Tsdb.at_ns = n * 1_000_000_000 && newest.Tsdb.last = float_of_int n)

(* ----- quantile over a window ----- *)

let q_buckets = [| 0.01; 0.1; 0.5; 1.0 |]

(* Nearest-rank over the in-window bucket deltas must land in the same
   bucket as the exact nearest-rank of the raw observations (the store
   only keeps bucket counts, so one bucket is its full resolution). *)
let prop_quantile_within_bucket_resolution =
  Test.make ~count:150 ~name:"windowed quantile is bucket-exact"
    Gen.(
      pair
        (list_size (int_range 1 60) (float_bound_exclusive 1.5))
        (float_range 0.05 1.0))
    (fun (obs, q) ->
      let obs = List.map (fun v -> Float.max 1e-6 v) obs in
      let reg, tsdb, tick = make_store () in
      let h = Metrics.histogram ~registry:reg ~buckets:q_buckets "t_lat_seconds" in
      tick ();
      List.iter (Metrics.Histogram.observe h) obs;
      tick ();
      match Tsdb.quantile tsdb ~q ~window_s:10.0 "t_lat_seconds" with
      | None -> Test.fail_report "no quantile for observed histogram"
      | Some reported ->
        let sorted = List.sort compare obs in
        let n = List.length sorted in
        let k = max 1 (int_of_float (ceil (q *. float_of_int n))) in
        let exact = List.nth sorted (min (n - 1) (k - 1)) in
        let bucket_of v =
          match Array.to_list q_buckets |> List.find_opt (fun b -> v <= b) with
          | Some b -> b
          | None -> infinity
        in
        let expected = bucket_of exact in
        (* One bucket of slack absorbs the float rank rounding at exact
           integer ranks (q * n landing on a bucket boundary count). *)
        let bounds = Array.to_list q_buckets @ [ infinity ] in
        let idx b =
          let rec go i = function
            | [] -> i
            | x :: rest -> if x = b then i else go (i + 1) rest
          in
          go 0 bounds
        in
        abs (idx reported - idx expected) <= 1)

(* ----- alert state machine vs a reference automaton ----- *)

type ref_state = {
  mutable r_st : Alerts.state;
  mutable r_pending_at : int;
}

let ref_step r ~now ~for_ns active =
  match (r.r_st, active) with
  | (Alerts.Inactive | Alerts.Resolved), true ->
    if for_ns <= 0 then r.r_st <- Alerts.Firing
    else begin
      r.r_pending_at <- now;
      r.r_st <- Alerts.Pending
    end
  | Alerts.Pending, true -> if now - r.r_pending_at >= for_ns then r.r_st <- Alerts.Firing
  | Alerts.Pending, false -> r.r_st <- Alerts.Inactive
  | Alerts.Firing, false -> r.r_st <- Alerts.Resolved
  | _ -> ()

let threshold_rule ~for_s =
  {
    Alerts.rule_name = "hot";
    condition =
      Alerts.Threshold
        {
          func = Tsdb.Value;
          series = "t_level";
          labels = [];
          window_s = 5.0;
          cmp = Alerts.Gt;
          bound = 0.5;
        };
    for_s;
    suspect = None;
  }

let prop_alert_state_machine =
  Test.make ~count:200 ~name:"alert state machine matches the reference automaton"
    Gen.(pair (int_range 0 3) (list_size (int_range 1 40) bool))
    (fun (for_ticks, actives) ->
      let reg, tsdb, tick = make_store () in
      let g = Metrics.gauge ~registry:reg "t_level" in
      let areg = Metrics.Registry.create () in
      let alerts =
        Alerts.create ~registry:areg
          ~rules:[ threshold_rule ~for_s:(float_of_int for_ticks) ]
          tsdb
      in
      let reference = { r_st = Alerts.Inactive; r_pending_at = 0 } in
      let for_ns = for_ticks * 1_000_000_000 in
      let history = ref [] in
      List.iteri
        (fun i active ->
          Metrics.Gauge.set g (if active then 1.0 else 0.0);
          tick ();
          ignore (Alerts.eval alerts);
          history := active :: !history;
          ref_step reference ~now:(Tsdb.last_sample_ns tsdb) ~for_ns active;
          let got = Option.get (Alerts.state alerts "hot") in
          if got <> reference.r_st then
            Test.fail_reportf "tick %d: state %s, reference %s" i (Alerts.state_name got)
              (Alerts.state_name reference.r_st);
          (* No Firing without the for-duration served: the last
             for_ticks+1 ticks must all have been active. *)
          if got = Alerts.Firing then begin
            let rec held n = function
              | [] -> n <= 0
              | a :: rest -> if n <= 0 then true else a && held (n - 1) rest
            in
            if not (held (for_ticks + 1) !history) then
              Test.fail_reportf "tick %d: firing without %d active ticks" i (for_ticks + 1)
          end)
        actives;
      (* Transition provenance: timestamps monotone, edges legal,
         Resolved entered only from Firing. *)
      let legal = function
        | Alerts.Inactive, (Alerts.Pending | Alerts.Firing)
        | Alerts.Pending, (Alerts.Firing | Alerts.Inactive)
        | Alerts.Firing, Alerts.Resolved
        | Alerts.Resolved, (Alerts.Pending | Alerts.Firing) ->
          true
        | _ -> false
      in
      let trs = Alerts.transitions alerts in
      let rec check prev_ns = function
        | [] -> true
        | tr :: rest ->
          tr.Alerts.t_at_ns >= prev_ns
          && legal (tr.Alerts.t_from, tr.Alerts.t_to)
          && (tr.Alerts.t_to <> Alerts.Resolved || tr.Alerts.t_from = Alerts.Firing)
          && check tr.Alerts.t_at_ns rest
      in
      check 0 trs)

(* One-hot state gauges: exactly one rebal_alert_state series per rule
   is 1, and it names the current state. *)
let test_alert_state_gauges () =
  let reg, tsdb, tick = make_store () in
  let g = Metrics.gauge ~registry:reg "t_level" in
  let areg = Metrics.Registry.create () in
  let alerts = Alerts.create ~registry:areg ~rules:[ threshold_rule ~for_s:0.0 ] tsdb in
  Metrics.Gauge.set g 1.0;
  tick ();
  ignore (Alerts.eval alerts);
  let one_hot =
    List.filter_map
      (fun (m : Metrics.metric) ->
        match m.Metrics.kind with
        | Metrics.Gauge gg when m.Metrics.name = "rebal_alert_state" ->
          if Metrics.Gauge.value gg = 1.0 then List.assoc_opt "state" m.Metrics.labels
          else None
        | _ -> None)
      (Metrics.Registry.metrics areg)
  in
  Alcotest.(check (list string)) "one-hot state" [ "firing" ] one_hot

(* ----- rule grammar ----- *)

let test_parse_threshold () =
  match Alerts.parse_rule "alert hot p99(lat_seconds[30s]) >= 0.25 for 10s suspect 2" with
  | Error e -> Alcotest.fail e
  | Ok None -> Alcotest.fail "rule parsed as blank"
  | Ok (Some r) ->
    Alcotest.(check string) "name" "hot" r.Alerts.rule_name;
    Alcotest.(check (float 1e-9)) "for" 10.0 r.Alerts.for_s;
    Alcotest.(check (option int)) "suspect" (Some 2) r.Alerts.suspect;
    (match r.Alerts.condition with
    | Alerts.Threshold { func = Tsdb.Quantile q; series; window_s; cmp = Alerts.Ge; bound; _ }
      ->
      Alcotest.(check (float 1e-9)) "quantile" 0.99 q;
      Alcotest.(check string) "series" "lat_seconds" series;
      Alcotest.(check (float 1e-9)) "window" 30.0 window_s;
      Alcotest.(check (float 1e-9)) "bound" 0.25 bound
    | _ -> Alcotest.fail "wrong condition shape")

let test_parse_burnrate () =
  match
    Alerts.parse_rule
      "burnrate slo bad=errs_total{shard=\"1\"} total=ops_total budget=0.01 factor=14.4 \
       short=5m long=1h for=2m suspect=1"
  with
  | Error e -> Alcotest.fail e
  | Ok None -> Alcotest.fail "rule parsed as blank"
  | Ok (Some r) ->
    Alcotest.(check string) "name" "slo" r.Alerts.rule_name;
    Alcotest.(check (float 1e-9)) "for" 120.0 r.Alerts.for_s;
    Alcotest.(check (option int)) "suspect" (Some 1) r.Alerts.suspect;
    (match r.Alerts.condition with
    | Alerts.Burnrate { bad = (bn, bl); total = (tn, _); budget; factor; short_s; long_s }
      ->
      Alcotest.(check string) "bad series" "errs_total" bn;
      Alcotest.(check (list (pair string string))) "bad labels" [ ("shard", "1") ] bl;
      Alcotest.(check string) "total series" "ops_total" tn;
      Alcotest.(check (float 1e-9)) "budget" 0.01 budget;
      Alcotest.(check (float 1e-9)) "factor" 14.4 factor;
      Alcotest.(check (float 1e-9)) "short" 300.0 short_s;
      Alcotest.(check (float 1e-9)) "long" 3600.0 long_s
    | _ -> Alcotest.fail "wrong condition shape")

let test_parse_rejects () =
  let bad line =
    match Alerts.parse_rule line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted: %s" line
  in
  bad "alert x frobnicate(a[5s]) > 1 for 0s";
  bad "alert x rate(a[5s]) > 1";
  bad "alert x rate(a) > 1 for 5s";
  bad "alert x rate(a[5s]) ~ 1 for 5s";
  bad "burnrate x bad=a total=b budget=0.1 factor=2 short=1h long=5m";
  bad "burnrate x bad=a total=b budget=0.1 factor=2 short=5m long=1h frob=1";
  (match Alerts.parse_rule "# a comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment should parse as blank");
  match Alerts.parse_rules "alert a value(x) > 1 for 0s\nalert a value(x) > 2 for 0s" with
  | Error e ->
    Alcotest.(check bool) "names the line" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "duplicate rule names accepted"

(* ----- burn-rate evaluation ----- *)

(* Both windows must burn: a short spike alone does not fire, a
   sustained one does, and stopping the errors resolves it. *)
let test_burnrate_fires_and_resolves () =
  let reg, tsdb, tick = make_store ~raw:20 () in
  let bad = Metrics.counter ~registry:reg "t_bad_total" in
  let total = Metrics.counter ~registry:reg "t_total" in
  let rule =
    {
      Alerts.rule_name = "slo";
      condition =
        Alerts.Burnrate
          {
            bad = ("t_bad_total", []);
            total = ("t_total", []);
            budget = 0.01;
            factor = 2.0;
            short_s = 3.0;
            long_s = 10.0;
          };
      for_s = 0.0;
      suspect = None;
    }
  in
  let areg = Metrics.Registry.create () in
  let alerts = Alerts.create ~registry:areg ~rules:[ rule ] tsdb in
  let step nbad =
    Metrics.Counter.add bad nbad;
    Metrics.Counter.add total 100;
    tick ();
    ignore (Alerts.eval alerts);
    Option.get (Alerts.state alerts "slo")
  in
  (* Clean traffic baseline fills the long window. *)
  for _ = 1 to 12 do ignore (step 0) done;
  Alcotest.(check bool) "clean traffic inactive" true (step 0 = Alerts.Inactive);
  (* One bad tick: the 3 s window burns, the 10 s window does not. *)
  let after_spike = step 10 in
  Alcotest.(check bool) "short spike alone does not fire"
    true
    (after_spike = Alerts.Inactive);
  (* Sustained 10% errors push both windows over 2 * 1% budget. *)
  let sustained = ref after_spike in
  for _ = 1 to 6 do sustained := step 10 done;
  Alcotest.(check bool) "sustained burn fires" true (!sustained = Alerts.Firing);
  let healed = ref !sustained in
  for _ = 1 to 15 do healed := step 0 done;
  Alcotest.(check bool) "clean traffic resolves" true (!healed = Alerts.Resolved)

(* ----- telemetry journal sink ----- *)

let test_sink_writes_samples_and_alerts () =
  let buf = Buffer.create 1024 in
  let sink = Journal.create ~write:(Buffer.add_string buf) () in
  let reg = Metrics.Registry.create () in
  let now = ref 0L in
  let tsdb =
    Tsdb.create
      ~clock_ns:(fun () -> !now)
      ~sink
      ~meta:[ ("who", Journal.Str "test") ]
      ~source:(fun () -> Metrics.Registry.metrics reg)
      ()
  in
  let g = Metrics.gauge ~registry:reg "t_level" in
  let alerts =
    Alerts.create ~registry:(Metrics.Registry.create ()) ~sink
      ~rules:[ threshold_rule ~for_s:0.0 ]
      tsdb
  in
  Metrics.Gauge.set g 1.0;
  now := Int64.add !now sec_ns;
  Tsdb.sample tsdb;
  ignore (Alerts.eval alerts);
  match Journal.parse_string (Buffer.contents buf) with
  | Error e -> Alcotest.fail e
  | Ok (header, events) ->
    Alcotest.(check string) "journal tag" "rebal-telemetry" header.Journal.journal;
    let kinds = List.map (fun e -> e.Journal.kind) events in
    Alcotest.(check (list string)) "one sample then one alert" [ "sample"; "alert" ] kinds;
    let alert = List.nth events 1 in
    Alcotest.(check string) "provenance rule" "hot"
      (Result.get_ok (Journal.str_field alert "rule"));
    Alcotest.(check string) "provenance to" "firing"
      (Result.get_ok (Journal.str_field alert "to"))

(* ----- build info ----- *)

let test_build_info () =
  let reg = Metrics.Registry.create () in
  let now = ref 100.0 in
  Metrics.register_build_info ~registry:reg ~clock:(fun () -> !now) ~version:"9.9.9" ();
  now := 107.5;
  let ms = Metrics.Registry.metrics reg in
  let find name =
    List.find_opt (fun (m : Metrics.metric) -> m.Metrics.name = name) ms
  in
  (match find "rebal_build_info" with
  | None -> Alcotest.fail "no rebal_build_info"
  | Some m ->
    Alcotest.(check (option string)) "version label" (Some "9.9.9")
      (List.assoc_opt "version" m.Metrics.labels);
    Alcotest.(check (option string)) "ocaml label" (Some Sys.ocaml_version)
      (List.assoc_opt "ocaml" m.Metrics.labels);
    (match m.Metrics.kind with
    | Metrics.Gauge g -> Alcotest.(check (float 0.0)) "value 1" 1.0 (Metrics.Gauge.value g)
    | _ -> Alcotest.fail "build info is not a gauge"));
  match find "rebal_uptime_seconds" with
  | None -> Alcotest.fail "no rebal_uptime_seconds"
  | Some m -> (
    match m.Metrics.kind with
    | Metrics.Gauge g ->
      Alcotest.(check (float 1e-9)) "uptime follows the clock" 7.5 (Metrics.Gauge.value g)
    | _ -> Alcotest.fail "uptime is not a gauge")

(* ----- HTTP routes ----- *)

let metrics_stub () = "# HELP x\nx 1\n"

let test_http_alerts_route () =
  let body = "ALERTS rules=1 firing=0\n" in
  let r = Http.respond ~metrics:metrics_stub ~alerts:(fun () -> body) "GET /alerts HTTP/1.0" in
  Alcotest.(check int) "status" 200 r.Http.status;
  Alcotest.(check string) "body" body r.Http.body;
  Alcotest.(check int) "404 without telemetry" 404
    (Http.respond ~metrics:metrics_stub "GET /alerts HTTP/1.0").Http.status

let test_http_tsdb_route () =
  let seen = ref None in
  let tsdb ~series ~window =
    seen := Some (series, window);
    Ok "{\"points\":[]}"
  in
  let r =
    Http.respond ~metrics:metrics_stub ~tsdb
      "GET /tsdb?series=a_total%7Bshard%3D%220%22%7D&window=30s HTTP/1.0"
  in
  Alcotest.(check int) "status" 200 r.Http.status;
  Alcotest.(check string) "json content type" "application/json" r.Http.content_type;
  (match !seen with
  | Some (series, window) ->
    Alcotest.(check string) "series percent-decoded" "a_total{shard=\"0\"}" series;
    Alcotest.(check (option string)) "window passed through" (Some "30s") window
  | None -> Alcotest.fail "handler not called");
  Alcotest.(check int) "missing series is 400" 400
    (Http.respond ~metrics:metrics_stub ~tsdb "GET /tsdb HTTP/1.0").Http.status;
  let failing ~series:_ ~window:_ = Error "bad selector" in
  Alcotest.(check int) "handler error is 400" 400
    (Http.respond ~metrics:metrics_stub ~tsdb:failing "GET /tsdb?series=%5D HTTP/1.0")
      .Http.status;
  Alcotest.(check int) "404 without telemetry" 404
    (Http.respond ~metrics:metrics_stub "GET /tsdb?series=x HTTP/1.0").Http.status

(* ----- selector / duration helpers ----- *)

let test_selector_round_trip () =
  let check s =
    match Tsdb.parse_selector s with
    | Error e -> Alcotest.failf "%s: %s" s e
    | Ok (name, labels) ->
      Alcotest.(check string) "round trip" s (Tsdb.selector_string name labels)
  in
  check "plain_series";
  check "with_labels{a=\"1\",b=\"two\"}";
  (match Tsdb.parse_selector "bad{unclosed" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unclosed selector accepted");
  match Tsdb.parse_duration "5m" with
  | Ok s -> Alcotest.(check (float 1e-9)) "5m" 300.0 s
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "rebal_telemetry"
    [
      ( "tsdb",
        [
          QCheck_alcotest.to_alcotest prop_downsampling_conserves_counter;
          QCheck_alcotest.to_alcotest prop_raw_window_counts_every_sample_once;
          QCheck_alcotest.to_alcotest prop_ring_eviction_oldest_first;
          QCheck_alcotest.to_alcotest prop_quantile_within_bucket_resolution;
          Alcotest.test_case "selectors and durations" `Quick test_selector_round_trip;
        ] );
      ( "alerts",
        [
          QCheck_alcotest.to_alcotest prop_alert_state_machine;
          Alcotest.test_case "one-hot state gauges" `Quick test_alert_state_gauges;
          Alcotest.test_case "threshold grammar" `Quick test_parse_threshold;
          Alcotest.test_case "burnrate grammar" `Quick test_parse_burnrate;
          Alcotest.test_case "grammar rejections" `Quick test_parse_rejects;
          Alcotest.test_case "burnrate fires and resolves" `Quick
            test_burnrate_fires_and_resolves;
        ] );
      ( "integration",
        [
          Alcotest.test_case "telemetry journal sink" `Quick
            test_sink_writes_samples_and_alerts;
          Alcotest.test_case "build info metric" `Quick test_build_info;
          Alcotest.test_case "GET /alerts" `Quick test_http_alerts_route;
          Alcotest.test_case "GET /tsdb" `Quick test_http_tsdb_route;
        ] );
    ]
