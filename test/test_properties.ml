(* Property-based tests (qcheck, registered through alcotest): random
   instances are generated structurally — not from our own Rng, so the
   two random sources cross-check each other — and every library-level
   invariant is asserted on them. *)

module Instance = Rebal_core.Instance
module Assignment = Rebal_core.Assignment
module Budget = Rebal_core.Budget
module Lower_bounds = Rebal_core.Lower_bounds
module Io = Rebal_core.Io
module Heap = Rebal_ds.Heap
module Sorted_jobs = Rebal_ds.Sorted_jobs
module Greedy = Rebal_algo.Greedy
module M_partition = Rebal_algo.M_partition
module Exact = Rebal_algo.Exact

open QCheck2

(* --- generators ---------------------------------------------------------- *)

let instance_gen ~max_n ~max_m ~max_size =
  Gen.(
    let* n = int_range 1 max_n in
    let* m = int_range 1 max_m in
    let* sizes = array_size (return n) (int_range 1 max_size) in
    let* costs = array_size (return n) (int_range 0 9) in
    let* initial = array_size (return n) (int_range 0 (m - 1)) in
    return (Instance.create ~costs ~sizes ~m initial))

let instance_with_k_gen ~max_n ~max_m ~max_size =
  Gen.(
    let* inst = instance_gen ~max_n ~max_m ~max_size in
    let* k = int_range 0 (Instance.n inst) in
    return (inst, k))

(* Tiny instances where the exact solver is instantaneous. *)
let tiny = instance_with_k_gen ~max_n:8 ~max_m:3 ~max_size:25

(* Medium instances for budget/validity-only properties. *)
let medium = instance_with_k_gen ~max_n:60 ~max_m:8 ~max_size:200

let count = 200

(* --- data-structure properties ------------------------------------------ *)

module Int_heap = Heap.Make (Int)

let prop_heap_sorts =
  Test.make ~name:"heap drains in sorted order" ~count
    Gen.(list_size (int_range 0 60) (int_range (-1000) 1000))
    (fun xs -> Int_heap.to_sorted_list (Int_heap.of_list xs) = List.sort compare xs)

let prop_heap_min_is_minimum =
  Test.make ~name:"heap min equals list minimum" ~count
    Gen.(list_size (int_range 1 60) (int_range (-1000) 1000))
    (fun xs ->
      Int_heap.min_exn (Int_heap.of_list xs) = List.fold_left min max_int xs)

let prop_sorted_jobs_partition_identity =
  Test.make ~name:"sorted view: prefix + suffix = total" ~count
    Gen.(list_size (int_range 0 40) (int_range 1 100))
    (fun sizes ->
      let jobs = Array.of_list (List.mapi (fun i s -> (i, s)) sizes) in
      let v = Sorted_jobs.of_assoc jobs in
      let q = Sorted_jobs.length v in
      List.for_all
        (fun l -> Sorted_jobs.prefix v l + Sorted_jobs.suffix v l = Sorted_jobs.total v)
        (List.init (q + 1) Fun.id))

let prop_sorted_jobs_large_prefix =
  Test.make ~name:"large jobs form a prefix" ~count
    Gen.(
      let* sizes = list_size (int_range 1 40) (int_range 1 100) in
      let* threshold = int_range 0 220 in
      return (sizes, threshold))
    (fun (sizes, threshold) ->
      let jobs = Array.of_list (List.mapi (fun i s -> (i, s)) sizes) in
      let v = Sorted_jobs.of_assoc jobs in
      let lc = Sorted_jobs.large_count v ~threshold in
      let ok = ref true in
      for i = 0 to Sorted_jobs.length v - 1 do
        let is_large = 2 * Sorted_jobs.size v i > threshold in
        if is_large <> (i < lc) then ok := false
      done;
      !ok)

(* --- core accounting ------------------------------------------------------ *)

let prop_assignment_accounting =
  Test.make ~name:"moves and cost recomputed from scratch agree" ~count medium
    (fun (inst, _) ->
      let n = Instance.n inst in
      let m = Instance.m inst in
      let arr = Array.init n (fun j -> (Instance.initial inst j + j) mod m) in
      let a = Assignment.of_array ~m arr in
      let expected_moves = ref 0 and expected_cost = ref 0 in
      for j = 0 to n - 1 do
        if arr.(j) <> Instance.initial inst j then begin
          incr expected_moves;
          expected_cost := !expected_cost + Instance.cost inst j
        end
      done;
      Assignment.moves inst a = !expected_moves
      && Assignment.relocation_cost inst a = !expected_cost
      && Array.fold_left ( + ) 0 (Assignment.loads inst a) = Instance.total_size inst)

let prop_io_roundtrip =
  Test.make ~name:"instance text roundtrip" ~count medium (fun (inst, _) ->
      match Io.instance_of_string (Io.instance_to_string inst) with
      | Error _ -> false
      | Ok inst' ->
        Instance.sizes inst = Instance.sizes inst'
        && Instance.costs inst = Instance.costs inst'
        && Instance.initial_assignment inst = Instance.initial_assignment inst'
        && Instance.m inst = Instance.m inst')

let prop_lower_bounds_ordered =
  Test.make ~name:"lower bounds dominate their parts" ~count medium
    (fun (inst, k) ->
      let best = Lower_bounds.best inst ~budget:(Budget.Moves k) in
      best >= Lower_bounds.average inst
      && best >= Lower_bounds.max_size inst
      && best >= Lower_bounds.g1 inst ~k)

let prop_g1_monotone_in_k =
  Test.make ~name:"G1 non-increasing in k" ~count medium (fun (inst, k) ->
      Lower_bounds.g1 inst ~k >= Lower_bounds.g1 inst ~k:(k + 1))

(* --- algorithm invariants -------------------------------------------------- *)

let prop_greedy_budget_and_validity =
  Test.make ~name:"greedy: valid and within budget" ~count medium
    (fun (inst, k) ->
      let a = Greedy.solve inst ~k in
      Assignment.moves inst a <= k
      && Array.fold_left ( + ) 0 (Assignment.loads inst a) = Instance.total_size inst)

let prop_m_partition_budget_and_bound =
  Test.make ~name:"m-partition: within budget, within 1.5 of lower bound proxy" ~count
    medium (fun (inst, k) ->
      let a, threshold = M_partition.solve_with_threshold inst ~k in
      let lb = Lower_bounds.best inst ~budget:(Budget.Moves k) in
      (* threshold >= lb and makespan <= 1.5 * threshold-ish; the precise
         end-to-end bound vs OPT is asserted on tiny instances below. *)
      Assignment.moves inst a <= k && threshold >= lb)

let prop_m_partition_opt_ratio_tiny =
  Test.make ~name:"m-partition: 2*makespan <= 3*OPT (tiny, vs exact)" ~count:120 tiny
    (fun (inst, k) ->
      let opt = Exact.opt_makespan_exn inst ~budget:(Budget.Moves k) in
      let a = M_partition.solve inst ~k in
      2 * Assignment.makespan inst a <= 3 * opt)

let prop_greedy_opt_ratio_tiny =
  Test.make ~name:"greedy: m*makespan <= (2m-1)*OPT (tiny, vs exact)" ~count:120 tiny
    (fun (inst, k) ->
      let opt = Exact.opt_makespan_exn inst ~budget:(Budget.Moves k) in
      let m = Instance.m inst in
      let a = Greedy.solve inst ~k in
      m * Assignment.makespan inst a <= ((2 * m) - 1) * opt)

let prop_exact_within_bounds_tiny =
  Test.make ~name:"exact: between lower bound and initial makespan" ~count:120 tiny
    (fun (inst, k) ->
      let opt = Exact.opt_makespan_exn inst ~budget:(Budget.Moves k) in
      opt >= Lower_bounds.best inst ~budget:(Budget.Moves k)
      && opt <= Instance.initial_makespan inst)

let prop_makespan_monotone_in_k_for_exact =
  Test.make ~name:"exact optimum non-increasing in k (tiny)" ~count:80 tiny
    (fun (inst, k) ->
      Exact.opt_makespan_exn inst ~budget:(Budget.Moves k)
      >= Exact.opt_makespan_exn inst ~budget:(Budget.Moves (k + 1)))

(* --- simulator policy invariants ------------------------------------------ *)

module Policy = Rebal_sim.Policy

(* Unit-cost instances with every job initially placed, the shape the
   simulators feed policies each round. *)
let sim_instance_with_k_gen ~max_n ~max_m ~max_size =
  Gen.(
    let* n = int_range 1 max_n in
    let* m = int_range 1 max_m in
    let* sizes = array_size (return n) (int_range 1 max_size) in
    let* initial = array_size (return n) (int_range 0 (m - 1)) in
    let* k = int_range 0 n in
    return (Instance.create ~sizes ~m initial, k))

let policies_under_test k =
  [
    Policy.No_rebalance;
    Policy.Greedy k;
    Policy.M_partition k;
    Policy.Local_search k;
    Policy.Full_lpt;
    Policy.Triggered { k; threshold = 1.2 };
    Policy.Failover
      { primary = Policy.M_partition k; fallback = Policy.Greedy k; deadline = 60.0 };
    Policy.Failover
      { primary = Policy.M_partition k; fallback = Policy.Greedy k; deadline = -1.0 };
  ]

let prop_policy_preserves_jobs_and_budget =
  Test.make ~name:"every policy: jobs preserved, in range, within budget" ~count:150
    (sim_instance_with_k_gen ~max_n:50 ~max_m:8 ~max_size:200)
    (fun (inst, k) ->
      let n = Instance.n inst and m = Instance.m inst in
      List.for_all
        (fun policy ->
          let a = Policy.apply policy inst in
          let arr = Assignment.to_array a in
          Array.length arr = n
          && Array.for_all (fun p -> p >= 0 && p < m) arr
          && Array.fold_left ( + ) 0 (Assignment.loads inst a) = Instance.total_size inst
          && (match Policy.budget policy with
             | None -> true
             | Some b -> Assignment.moves inst a <= b))
        (policies_under_test k))

let prop_triggered_is_identity_below_threshold =
  Test.make ~name:"triggered: identity at or below its threshold" ~count:200
    (sim_instance_with_k_gen ~max_n:40 ~max_m:6 ~max_size:100)
    (fun (inst, k) ->
      let m = Instance.m inst in
      let average = float_of_int (Instance.total_size inst) /. float_of_int m in
      let imbalance =
        if average > 0.0 then float_of_int (Instance.initial_makespan inst) /. average
        else 1.0
      in
      (* A threshold exactly at the measured imbalance must not fire
         (strict comparison), hence zero moves. *)
      let a = Policy.apply (Policy.Triggered { k; threshold = imbalance }) inst in
      Assignment.moves inst a = 0)

let () =
  Alcotest.run "rebal_properties"
    [
      ( "datastructs",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_heap_sorts;
            prop_heap_min_is_minimum;
            prop_sorted_jobs_partition_identity;
            prop_sorted_jobs_large_prefix;
          ] );
      ( "core",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_assignment_accounting;
            prop_io_roundtrip;
            prop_lower_bounds_ordered;
            prop_g1_monotone_in_k;
          ] );
      ( "algorithms",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_greedy_budget_and_validity;
            prop_m_partition_budget_and_bound;
            prop_m_partition_opt_ratio_tiny;
            prop_greedy_opt_ratio_tiny;
            prop_exact_within_bounds_tiny;
            prop_makespan_monotone_in_k_for_exact;
          ] );
      ( "policies",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_policy_preserves_jobs_and_budget;
            prop_triggered_is_identity_below_threshold;
          ] );
    ]
