(* Tests for the experiment harness: table rendering and CSV escaping,
   statistics against hand-computed values, and timer sanity. *)

module Table = Rebal_harness.Table
module Stats = Rebal_harness.Stats
module Timer = Rebal_harness.Timer

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "beta-long"; "22" ];
  let out = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length out > 0
    && String.sub out 0 11 = "== demo ==\n");
  (* Alignment: each data line has the same width. *)
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  (match lines with
  | _title :: header :: _sep :: rows ->
    List.iter
      (fun r -> Alcotest.(check int) "aligned" (String.length header) (String.length r))
      rows
  | _ -> Alcotest.fail "unexpected table layout");
  Alcotest.check_raises "row width" (Invalid_argument "Table.add_row: row width mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_csv () =
  let t = Table.create ~title:"csv" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "x,y"; "2" ];
  Table.add_int_row t "ints" [ 7 ];
  Alcotest.(check string) "csv" "a,b\nx;y,2\nints,7\n" (Table.to_csv t)

let test_table_row_order () =
  let t = Table.create ~title:"ord" ~columns:[ "i" ] in
  List.iter (fun i -> Table.add_row t [ string_of_int i ]) [ 1; 2; 3 ];
  Alcotest.(check string) "order preserved" "i\n1\n2\n3\n" (Table.to_csv t)

let test_stats_values () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.maximum xs);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.minimum xs);
  Alcotest.(check (float 1e-9)) "p50" 2.0 (Stats.percentile xs 0.5);
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 (Stats.stddev xs);
  let s = Stats.summarize xs in
  Alcotest.(check int) "count" 4 s.Stats.count;
  Alcotest.(check (float 1e-9)) "summary mean" 2.5 s.Stats.mean

let test_stats_empty () =
  Alcotest.(check (float 1e-9)) "mean []" 0.0 (Stats.mean [||]);
  Alcotest.(check (float 1e-9)) "percentile []" 0.0 (Stats.percentile [||] 0.5);
  Alcotest.(check (float 1e-9)) "stddev singleton" 0.0 (Stats.stddev [| 5.0 |]);
  Alcotest.(check (float 1e-9)) "ratio by zero" 1.0 (Stats.ratio 5 0);
  Alcotest.(check (float 1e-9)) "ratio" 2.5 (Stats.ratio 5 2)

let test_percentile_small () =
  (* Nearest-rank on degenerate inputs: empty is 0 by convention, a
     singleton is its own value at every p, p=0/p=1 are min/max. *)
  Alcotest.(check (float 1e-9)) "empty p0" 0.0 (Stats.percentile [||] 0.0);
  Alcotest.(check (float 1e-9)) "empty p1" 0.0 (Stats.percentile [||] 1.0);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "singleton p=%.1f" p)
        7.5
        (Stats.percentile [| 7.5 |] p))
    [ 0.0; 0.5; 1.0 ];
  let xs = [| 3.0; 1.0; 2.0 |] in
  Alcotest.(check (float 1e-9)) "p0 is the minimum" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p1 is the maximum" 3.0 (Stats.percentile xs 1.0)

let test_timer () =
  let value, elapsed = Timer.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 value;
  Alcotest.(check bool) "non-negative" true (elapsed >= 0.0);
  let value, median = Timer.time_median ~repeats:3 (fun () -> "x") in
  Alcotest.(check string) "median result" "x" value;
  Alcotest.(check bool) "median non-negative" true (median >= 0.0)

let test_now_ns () =
  let a = Timer.now_ns () in
  let b = Timer.now_ns () in
  Alcotest.(check bool) "monotonic" true (Int64.compare b a >= 0);
  Alcotest.(check (float 1e-12)) "ns_to_s" 1.5 (Timer.ns_to_s 1_500_000_000L)

let () =
  Alcotest.run "rebal_harness"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "row order" `Quick test_table_row_order;
        ] );
      ( "stats",
        [
          Alcotest.test_case "values" `Quick test_stats_values;
          Alcotest.test_case "edge cases" `Quick test_stats_empty;
          Alcotest.test_case "percentile small arrays" `Quick test_percentile_small;
        ] );
      ( "timer",
        [
          Alcotest.test_case "basic" `Quick test_timer;
          Alcotest.test_case "now_ns" `Quick test_now_ns;
        ] );
    ]
