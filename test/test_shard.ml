(* Sharded router tests: the qcheck stream property (every shard's
   bounded-repair invariant plus directory integrity must hold for
   S ∈ {1, 2, 8}), global-state accounting, the cross-shard move pass,
   and construction/validation edges. *)

module Engine = Rebal_online.Engine
module Shard = Rebal_online.Shard

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected shard error: %s" e

(* The same adversarial stream shape as the engine suite, but with
   m >= 8 so an 8-way split is constructible. *)
let stream_gen =
  let open QCheck2 in
  Gen.(
    let* m = int_range 8 16 in
    let id = map (fun i -> Printf.sprintf "j%d" i) (int_range 0 24) in
    let* events =
      list_size (int_range 0 80)
        (oneof
           [
             map2 (fun id size -> `Add (id, size)) id (int_range 1 60);
             map (fun id -> `Remove id) id;
             map2 (fun id size -> `Resize (id, size)) id (int_range 1 60);
             map (fun k -> `Rebalance k) (int_range 0 8);
           ])
    in
    let* k = int_range 0 20 in
    return (m, events, k))

let apply_events sh events =
  List.iter
    (fun ev ->
      (* Errors (duplicate adds, missing removes) are part of the stream:
         the router must reject them without corrupting the directory. *)
      match ev with
      | `Add (id, size) -> ignore (Shard.add_job sh ~id ~size)
      | `Remove id -> ignore (Shard.remove_job sh ~id)
      | `Resize (id, size) -> ignore (Shard.resize_job sh ~id ~size)
      | `Rebalance k -> ignore (Shard.rebalance sh ~k))
    events

let prop_sharded_stream_consistent =
  QCheck2.Test.make
    ~name:"sharded stream: check_consistency holds for S in {1,2,8}" ~count:200 stream_gen
    (fun (m, events, k) ->
      List.for_all
        (fun shards ->
          let sh = Shard.create ~m ~shards () in
          apply_events sh events;
          let loads = Shard.loads sh in
          Shard.check_consistency sh ~k
          && Shard.check_consistency sh ~k:max_int
          && Array.length loads = m
          && Array.fold_left ( + ) 0 loads = (Shard.stats sh).Shard.total_size
          && Array.fold_left max 0 loads = Shard.makespan sh
          && Shard.job_count sh
             = List.fold_left
                 (fun acc e -> acc + Engine.job_count e)
                 0
                 (Array.to_list (Array.init shards (Shard.engine sh))))
        [ 1; 2; 8 ])

let prop_single_shard_matches_engine =
  QCheck2.Test.make ~name:"S=1 router behaves exactly like a bare engine" ~count:200
    stream_gen
    (fun (m, events, k) ->
      let sh = Shard.create ~m ~shards:1 () in
      let eng = Engine.create ~m () in
      apply_events sh events;
      List.iter
        (fun ev ->
          match ev with
          | `Add (id, size) -> ignore (Engine.add_job eng ~id ~size)
          | `Remove id -> ignore (Engine.remove_job eng ~id)
          | `Resize (id, size) -> ignore (Engine.resize_job eng ~id ~size)
          | `Rebalance k -> ignore (Engine.rebalance eng ~k))
        events;
      ignore (Shard.rebalance sh ~k);
      ignore (Engine.rebalance eng ~k);
      Shard.loads sh = Engine.loads eng
      && Shard.makespan sh = Engine.makespan eng
      && Shard.job_count sh = Engine.job_count eng)

let test_routing_is_sticky () =
  let sh = Shard.create ~m:8 ~shards:4 () in
  for i = 0 to 199 do
    ignore (ok (Shard.add_job sh ~id:(Printf.sprintf "j%d" i) ~size:(1 + (i mod 17))))
  done;
  check_int "all jobs present" 200 (Shard.job_count sh);
  for i = 0 to 199 do
    let id = Printf.sprintf "j%d" i in
    match Shard.shard_of sh id with
    | None -> Alcotest.failf "%s lost by the directory" id
    | Some s ->
      check_bool "directory agrees with the shard" true (Engine.mem (Shard.engine sh s) id);
      (* find translates the per-shard processor into the global index. *)
      (match Shard.find sh id with
      | Some (_, p) ->
        check_bool "global proc in the shard's range" true
          (p >= Shard.offset sh s && p < Shard.offset sh s + Engine.m (Shard.engine sh s))
      | None -> Alcotest.fail "find lost a live job")
  done;
  (* Re-adding after a remove lands back on the hash-home shard. *)
  let home = Option.get (Shard.shard_of sh "j7") in
  ignore (ok (Shard.remove_job sh ~id:"j7"));
  check_bool "removed from directory" false (Shard.mem sh "j7");
  ignore (ok (Shard.add_job sh ~id:"j7" ~size:3));
  check_int "hash routing is deterministic" home (Option.get (Shard.shard_of sh "j7"))

let test_inter_shard_move () =
  (* Two single-processor shards, all load on the first: per-shard repair
     cannot help (one processor is trivially balanced), so only the
     cross-shard pass can lower the global peak. *)
  let e0 = Engine.create ~m:1 () and e1 = Engine.create ~m:1 () in
  ignore (Engine.add_job e0 ~id:"big" ~size:100);
  ignore (Engine.add_job e0 ~id:"small" ~size:60);
  let sh = ok (Shard.of_engines [| e0; e1 |]) in
  check_int "peak before" 160 (Shard.makespan sh);
  let moves = Shard.rebalance sh ~k:8 in
  check_int "peak after the cross-shard transfer" 100 (Shard.makespan sh);
  check_int "exactly one transfer" 1 (List.length moves);
  (match moves with
  | [ mv ] ->
    check Alcotest.string "the big job moved" "big" mv.Shard.id;
    check_int "from global proc 0" 0 mv.Shard.src;
    check_int "to global proc 1" 1 mv.Shard.dst
  | _ -> Alcotest.fail "expected the single transfer as a move");
  check_int "directory follows the move" 1 (Option.get (Shard.shard_of sh "big"));
  check_int "inter_moves counted" 1 (Shard.stats sh).Shard.inter_moves;
  check_bool "still consistent" true (Shard.check_consistency sh ~k:8);
  (* No further improvement is possible: the pass must not thrash. *)
  check_int "idempotent" 0 (List.length (Shard.rebalance sh ~k:8))

let test_of_engines_rejects_duplicates () =
  let e0 = Engine.create ~m:1 () and e1 = Engine.create ~m:1 () in
  ignore (Engine.add_job e0 ~id:"x" ~size:5);
  ignore (Engine.add_job e1 ~id:"x" ~size:7);
  match Shard.of_engines [| e0; e1 |] with
  | Ok _ -> Alcotest.fail "duplicate residency accepted"
  | Error e -> check_bool ("names the job: " ^ e) true (String.length e > 0)

let test_create_validation () =
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Shard.create: need at least one shard") (fun () ->
      ignore (Shard.create ~m:4 ~shards:0 ()));
  Alcotest.check_raises "more shards than processors"
    (Invalid_argument "Shard.create: need at least one processor per shard") (fun () ->
      ignore (Shard.create ~m:2 ~shards:3 ()));
  (* Uneven splits hand the remainder to the first shards. *)
  let sh = Shard.create ~m:7 ~shards:3 () in
  check_int "shard 0 procs" 3 (Engine.m (Shard.engine sh 0));
  check_int "shard 1 procs" 2 (Engine.m (Shard.engine sh 1));
  check_int "shard 2 procs" 2 (Engine.m (Shard.engine sh 2));
  check_int "offsets partition" 3 (Shard.offset sh 1);
  check_int "offsets partition" 5 (Shard.offset sh 2);
  match Shard.journal_snapshot sh with
  | Ok _ -> Alcotest.fail "snapshot without journals must fail"
  | Error e -> check_bool "names the missing sinks" true (String.length e > 0)

let test_aggregated_stats () =
  let sh = Shard.create ~m:8 ~shards:2 () in
  for i = 0 to 49 do
    ignore (ok (Shard.add_job sh ~id:(Printf.sprintf "j%d" i) ~size:(1 + (i mod 9))))
  done;
  ignore (Shard.rebalance sh ~k:4);
  let st = Shard.stats sh in
  check_int "shards" 2 st.Shard.shards;
  check_int "jobs" 50 st.Shard.jobs;
  check_int "procs" 8 st.Shard.procs;
  check_int "adds summed" 50 st.Shard.adds;
  check_int "makespan is the global peak" (Shard.makespan sh) st.Shard.makespan;
  check_bool "imbalance sane" true (st.Shard.imbalance >= 1.0 -. 1e-9);
  check_int "per-shard view has one entry per shard" 2
    (Array.length (Shard.shard_stats sh))

let () =
  Alcotest.run "rebal_shard"
    [
      ( "stream properties",
        [
          QCheck_alcotest.to_alcotest prop_sharded_stream_consistent;
          QCheck_alcotest.to_alcotest prop_single_shard_matches_engine;
        ] );
      ( "routing",
        [
          Alcotest.test_case "directory is sticky and global" `Quick test_routing_is_sticky;
          Alcotest.test_case "cross-shard move pass" `Quick test_inter_shard_move;
        ] );
      ( "construction",
        [
          Alcotest.test_case "duplicate residency rejected" `Quick
            test_of_engines_rejects_duplicates;
          Alcotest.test_case "creation validation and splits" `Quick test_create_validation;
          Alcotest.test_case "aggregated stats" `Quick test_aggregated_stats;
        ] );
    ]
