(* Supervisor tests: the health state machine (probe streaks, watchdog
   deadlines, recovery ramp), and the qcheck failover property — for
   S ∈ {2, 8}, evacuating a shard under an adversarial stream conserves
   every job, keeps the directory consistent, leaves every journal
   (evacuated shard included) replaying to the live state, and the
   evacuated shard restores from its own journal and readmits. *)

module Engine = Rebal_online.Engine
module Shard = Rebal_online.Shard
module Supervisor = Rebal_online.Supervisor
module Replay = Rebal_online.Replay
module Journal = Rebal_obs.Journal

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let health_eq =
  Alcotest.testable
    (fun ppf h -> Format.pp_print_string ppf (Supervisor.health_name h))
    ( = )

(* A cluster whose every shard journals into a buffer, so tests can
   replay what the engines recorded. *)
let journaled_cluster ~m ~shards =
  let buffers = Array.init shards (fun _ -> Buffer.create 1024) in
  let cluster =
    Shard.create
      ~journal_for:(fun i -> Some (Journal.create ~write:(Buffer.add_string buffers.(i)) ()))
      ~m ~shards ()
  in
  (cluster, buffers)

let replay_matches cluster buffers i =
  match Result.bind (Journal.parse_string (Buffer.contents buffers.(i))) Replay.resume with
  | Error _ -> false
  | Ok (eng, _) ->
    let live = Shard.engine cluster i in
    Engine.job_count eng = Engine.job_count live
    && Engine.makespan eng = Engine.makespan live
    && Engine.fold_jobs live
         (fun acc ~id ~size ~proc ->
           acc
           && match Engine.find eng id with Some (sz, p) -> sz = size && p = proc | None -> false)
         true

let live_jobs cluster =
  List.concat
    (List.init (Shard.shard_count cluster) (fun i ->
         Engine.fold_jobs (Shard.engine cluster i)
           (fun acc ~id ~size ~proc:_ -> (id, size) :: acc)
           []))

(* ----- the failover property ----- *)

let stream_gen =
  let open QCheck2 in
  Gen.(
    let* m = int_range 8 16 in
    let id = map (fun i -> Printf.sprintf "j%d" i) (int_range 0 24) in
    let* events =
      list_size (int_range 0 80)
        (oneof
           [
             map2 (fun id size -> `Add (id, size)) id (int_range 1 60);
             map (fun id -> `Remove id) id;
             map2 (fun id size -> `Resize (id, size)) id (int_range 1 60);
             map (fun k -> `Rebalance k) (int_range 0 8);
           ])
    in
    let* victim = int_range 0 1000 in
    return (m, events, victim))

let apply_events sup events =
  List.iter
    (fun ev ->
      match ev with
      | `Add (id, size) -> ignore (Supervisor.add_job sup ~id ~size)
      | `Remove id -> ignore (Supervisor.remove_job sup ~id)
      | `Resize (id, size) -> ignore (Supervisor.resize_job sup ~id ~size)
      | `Rebalance k -> ignore (Supervisor.rebalance sup ~k))
    events

let prop_failover_conserves_work =
  QCheck2.Test.make
    ~name:"evacuate + readmit conserves work and replays cleanly for S in {2,8}" ~count:100
    stream_gen
    (fun (m, events, victim) ->
      List.for_all
        (fun shards ->
          let cluster, buffers = journaled_cluster ~m ~shards in
          let sup = Supervisor.create cluster in
          apply_events sup events;
          let before = List.sort compare (live_jobs cluster) in
          let victim = victim mod shards in
          (* Kill: every journaled job must survive on the survivors. *)
          ignore (Supervisor.mark_down sup victim);
          let after = List.sort compare (live_jobs cluster) in
          let conserved = before = after in
          let evacuated =
            Engine.job_count (Shard.engine cluster victim) = 0
            && Shard.weight cluster victim = 0.0
            && Supervisor.health sup victim = Supervisor.Down
          in
          let consistent = Shard.check_consistency cluster ~k:8 in
          let replays =
            List.for_all (replay_matches cluster buffers) (List.init shards Fun.id)
          in
          (* Readmit from the victim's own journal, ramp back, keep going. *)
          let readmitted =
            match
              Result.bind
                (Journal.parse_string (Buffer.contents buffers.(victim)))
                Replay.resume
            with
            | Error _ -> false
            | Ok (eng, outcome) ->
              Engine.set_journal eng
                (Some
                   (Journal.create ~start_seq:outcome.Replay.events ~header_written:true
                      ~write:(Buffer.add_string buffers.(victim)) ()));
              Result.is_ok (Supervisor.readmit sup victim eng)
          in
          let ramped =
            readmitted
            && begin
                 for _ = 1 to 4 do
                   ignore (Supervisor.tick sup)
                 done;
                 Supervisor.health sup victim = Supervisor.Healthy
                 && Shard.weight cluster victim = 1.0
               end
          in
          apply_events sup events;
          let final_consistent = Shard.check_consistency cluster ~k:8 in
          let final_replays =
            List.for_all (replay_matches cluster buffers) (List.init shards Fun.id)
          in
          conserved && evacuated && consistent && replays && ramped && final_consistent
          && final_replays)
        [ 2; 8 ])

(* ----- state machine units ----- *)

let config ?(suspect_after = 1) ?(down_after = 3) ?(op_deadline = 1.0)
    ?(evac_budget = max_int) ?(recovery_steps = 4) () =
  { Supervisor.suspect_after; down_after; op_deadline; evac_budget; recovery_steps }

let test_probe_streaks () =
  let cluster, _ = journaled_cluster ~m:8 ~shards:2 in
  let alive = [| true; true |] in
  let sup = Supervisor.create ~config:(config ()) ~probe:(fun i -> alive.(i)) cluster in
  for i = 0 to 19 do
    ignore (ok (Supervisor.add_job sup ~id:(Printf.sprintf "j%d" i) ~size:(1 + (i mod 7))))
  done;
  check health_eq "starts healthy" Supervisor.Healthy (Supervisor.health sup 1);
  alive.(1) <- false;
  ignore (Supervisor.tick sup);
  check health_eq "one failure -> suspect" Supervisor.Suspect (Supervisor.health sup 1);
  (* A success before the down threshold heals the streak. *)
  alive.(1) <- true;
  ignore (Supervisor.tick sup);
  check health_eq "success heals suspect" Supervisor.Healthy (Supervisor.health sup 1);
  alive.(1) <- false;
  ignore (Supervisor.tick sup);
  ignore (Supervisor.tick sup);
  check health_eq "two failures -> still suspect" Supervisor.Suspect (Supervisor.health sup 1);
  let jobs_on_1 = Engine.job_count (Shard.engine cluster 1) in
  ignore (Supervisor.tick sup);
  check health_eq "third failure -> down" Supervisor.Down (Supervisor.health sup 1);
  check_bool "weight dropped" true (Shard.weight cluster 1 = 0.0);
  check_int "victim drained" 0 (Engine.job_count (Shard.engine cluster 1));
  check_int "survivor absorbed the jobs" 20 (Engine.job_count (Shard.engine cluster 0));
  let h = Supervisor.stats sup in
  check_int "one evacuation" 1 h.Supervisor.evacuations;
  check_int "evacuated jobs counted" jobs_on_1 h.Supervisor.evacuated_jobs;
  (* A live probe alone does not resurrect a Down shard: it needs readmit. *)
  alive.(1) <- true;
  ignore (Supervisor.tick sup);
  check health_eq "down stays down without readmit" Supervisor.Down (Supervisor.health sup 1);
  check_bool "cluster still consistent" true (Shard.check_consistency cluster ~k:8)

let test_watchdog_deadline () =
  let cluster, _ = journaled_cluster ~m:8 ~shards:2 in
  (* Every clock read advances 0.8s: each timed op sees dt = 0.8 under a
     1.0s deadline (no trip) — until the deadline is tightened. *)
  let now = ref 0.0 in
  let clock () =
    now := !now +. 0.8;
    !now
  in
  let sup =
    Supervisor.create ~config:(config ~op_deadline:1.0 ~down_after:2 ()) ~clock cluster
  in
  ignore (ok (Supervisor.add_job sup ~id:"a" ~size:5));
  check_int "no trip under the deadline" 0 (Supervisor.stats sup).Supervisor.watchdog_trips;
  (* With down_after = 1 a single blown deadline downs the serving
     shard, whichever one the ring picked. *)
  let tight =
    Supervisor.create ~config:(config ~op_deadline:0.5 ~down_after:1 ()) ~clock cluster
  in
  (match Supervisor.add_job tight ~id:"b" ~size:5 with
  | Ok (_, _) -> ()
  | Error e -> Alcotest.failf "add under watchdog: %s" e);
  let h = Supervisor.stats tight in
  check_int "blown deadline counted" 1 h.Supervisor.watchdog_trips;
  check_int "the slow shard went down" 1 h.Supervisor.down;
  check_bool "evacuation ran" true (h.Supervisor.evacuations >= 1);
  check_bool "cluster consistent after watchdog evacuation" true
    (Shard.check_consistency cluster ~k:8)

let test_recovery_ramp () =
  let cluster, buffers = journaled_cluster ~m:8 ~shards:2 in
  let alive = [| true; true |] in
  let sup =
    Supervisor.create
      ~config:(config ~down_after:1 ~recovery_steps:4 ())
      ~probe:(fun i -> alive.(i))
      cluster
  in
  for i = 0 to 15 do
    ignore (ok (Supervisor.add_job sup ~id:(Printf.sprintf "j%d" i) ~size:(1 + i)))
  done;
  alive.(0) <- false;
  ignore (Supervisor.tick sup);
  check health_eq "down" Supervisor.Down (Supervisor.health sup 0);
  alive.(0) <- true;
  let eng, outcome =
    ok (Result.bind (Journal.parse_string (Buffer.contents buffers.(0))) Replay.resume)
  in
  Engine.set_journal eng
    (Some
       (Journal.create ~start_seq:outcome.Replay.events ~header_written:true
          ~write:(Buffer.add_string buffers.(0)) ()));
  ok (Supervisor.readmit sup 0 eng);
  check health_eq "readmitted -> recovering" Supervisor.Recovering (Supervisor.health sup 0);
  check_bool "re-enters at weight 0" true (Shard.weight cluster 0 = 0.0);
  let expected = [ 0.25; 0.5; 0.75; 1.0 ] in
  List.iteri
    (fun step w ->
      ignore (Supervisor.tick sup);
      check (Alcotest.float 1e-9) (Printf.sprintf "ramp step %d" (step + 1)) w
        (Shard.weight cluster 0))
    expected;
  check health_eq "full ramp -> healthy" Supervisor.Healthy (Supervisor.health sup 0);
  (* A failure mid-ramp sends the shard straight back down. *)
  alive.(1) <- false;
  ignore (Supervisor.tick sup);
  alive.(1) <- true;
  let eng1, outcome1 =
    ok (Result.bind (Journal.parse_string (Buffer.contents buffers.(1))) Replay.resume)
  in
  Engine.set_journal eng1
    (Some
       (Journal.create ~start_seq:outcome1.Replay.events ~header_written:true
          ~write:(Buffer.add_string buffers.(1)) ()));
  ok (Supervisor.readmit sup 1 eng1);
  ignore (Supervisor.tick sup);
  check health_eq "ramping" Supervisor.Recovering (Supervisor.health sup 1);
  alive.(1) <- false;
  ignore (Supervisor.tick sup);
  check health_eq "failure mid-ramp -> down again" Supervisor.Down (Supervisor.health sup 1);
  check_bool "weight back to 0" true (Shard.weight cluster 1 = 0.0)

let test_degraded_mode () =
  let cluster, _ = journaled_cluster ~m:8 ~shards:2 in
  let sup = Supervisor.create ~config:(config ~evac_budget:3 ()) cluster in
  for i = 0 to 19 do
    ignore (ok (Supervisor.add_job sup ~id:(Printf.sprintf "j%d" i) ~size:(1 + (i mod 7))))
  done;
  let victim_jobs = Engine.job_count (Shard.engine cluster 0) in
  Alcotest.(check bool) "victim holds more than the budget" true (victim_jobs > 3);
  ignore (Supervisor.mark_down sup 0);
  let h = Supervisor.stats sup in
  check_int "budget honoured" 3 h.Supervisor.evacuated_jobs;
  check_int "rest stranded" (victim_jobs - 3) h.Supervisor.stranded_jobs;
  check_int "stranded jobs stay on the dead engine" (victim_jobs - 3)
    (Engine.job_count (Shard.engine cluster 0));
  (* Ops on a stranded job are refused, not routed into the corpse. *)
  let stranded_id =
    Engine.fold_jobs (Shard.engine cluster 0) (fun _ ~id ~size:_ ~proc:_ -> Some id) None
    |> Option.get
  in
  (match Supervisor.remove_job sup ~id:stranded_id with
  | Ok _ -> Alcotest.fail "remove of a stranded job must be rejected"
  | Error e -> check_bool ("names the shard: " ^ e) true (String.length e > 0));
  (match Supervisor.resize_job sup ~id:stranded_id ~size:9 with
  | Ok _ -> Alcotest.fail "resize of a stranded job must be rejected"
  | Error _ -> ());
  check_int "rejections counted" 2 (Supervisor.stats sup).Supervisor.degraded_rejections;
  (* New placements keep working and never land on the dead shard. *)
  for i = 100 to 199 do
    let id = Printf.sprintf "n%d" i in
    ignore (ok (Supervisor.add_job sup ~id ~size:3));
    check_int ("new job routed to the survivor: " ^ id) 1
      (Option.get (Shard.shard_of cluster id))
  done;
  check_bool "still consistent in degraded mode" true (Shard.check_consistency cluster ~k:8)

let test_readmit_validation () =
  let cluster, _ = journaled_cluster ~m:8 ~shards:2 in
  let sup = Supervisor.create cluster in
  (match Supervisor.readmit sup 0 (Engine.create ~m:4 ()) with
  | Ok () -> Alcotest.fail "readmit of a healthy shard must fail"
  | Error e -> check_bool ("says not down: " ^ e) true (String.length e > 0));
  ignore (ok (Supervisor.add_job sup ~id:"x" ~size:5));
  ignore (Supervisor.mark_down sup 0);
  (* Wrong processor count and phantom jobs are both rejected. *)
  (match Supervisor.readmit sup 0 (Engine.create ~m:3 ()) with
  | Ok () -> Alcotest.fail "wrong processor count accepted"
  | Error _ -> ());
  let phantom = Engine.create ~m:4 () in
  ignore (Engine.add_job phantom ~id:"ghost" ~size:2);
  (match Supervisor.readmit sup 0 phantom with
  | Ok () -> Alcotest.fail "engine with phantom jobs accepted"
  | Error _ -> ());
  ok (Supervisor.readmit sup 0 (Engine.create ~m:4 ()));
  check health_eq "clean engine readmits" Supervisor.Recovering (Supervisor.health sup 0)

let test_all_down_refuses () =
  let cluster, _ = journaled_cluster ~m:8 ~shards:2 in
  let sup = Supervisor.create cluster in
  ignore (ok (Supervisor.add_job sup ~id:"x" ~size:5));
  ignore (Supervisor.mark_down sup 0);
  ignore (Supervisor.mark_down sup 1);
  check_int "nothing serving" 0 (Supervisor.serving_shards sup);
  (match Supervisor.add_job sup ~id:"y" ~size:1 with
  | Ok _ -> Alcotest.fail "add with no serving shards must fail"
  | Error e -> check_bool ("refuses: " ^ e) true (String.length e > 0));
  (* The last evacuation had no survivors: the job stays stranded. *)
  check_int "job survived as stranded" 1 (Shard.job_count cluster);
  check_bool "stranded on a dead shard" true
    ((Supervisor.stats sup).Supervisor.stranded_jobs >= 1)

let () =
  Alcotest.run "rebal_supervisor"
    [
      ( "failover property",
        [ QCheck_alcotest.to_alcotest prop_failover_conserves_work ] );
      ( "state machine",
        [
          Alcotest.test_case "probe streaks drive the transitions" `Quick test_probe_streaks;
          Alcotest.test_case "watchdog deadline counts as failure" `Quick
            test_watchdog_deadline;
          Alcotest.test_case "recovery ramps the weight back" `Quick test_recovery_ramp;
        ] );
      ( "degraded mode",
        [
          Alcotest.test_case "budgeted evacuation strands loudly" `Quick test_degraded_mode;
          Alcotest.test_case "readmission validation" `Quick test_readmit_validation;
          Alcotest.test_case "all shards down refuses service" `Quick test_all_down_refuses;
        ] );
    ]
