(* PR-10 regression suite: the batched hot path and its companions.

   - Float boundary round trips through BOTH journal codecs (max_float,
     subnormals, -0.) and the non-finite rejection contract (encode
     error with line/seq context, no sequence number burned).
   - Binary frame codec: convert-equivalence with JSONL, truncation and
     corruption rejected with frame-numbered errors.
   - The qcheck equivalence property: [Engine.apply_bulk] must leave
     state, stats and journal bytes bit-identical to one-by-one
     application, for batch sizes {1, 7, 1024} and every trigger mode.
   - [Cluster.apply_bulk] against the one-by-one router.
   - [Protocol.handle_lines]: pipelined replies identical to the
     unbatched session, parse errors flushed in order, QUIT drops the
     pipelined remainder.
   - Lineio under adversity: EAGAIN (nonblocking fds) on both the read
     and write paths, signals landing mid-session, [has_line] as an
     exact batching probe.
   - The HTTP sniffer: a delayed first byte (the "HE" of a slow HELP
     client) must fall back to the protocol session, never classify as
     HTTP. *)

module Engine = Rebal_online.Engine
module Cluster = Rebal_online.Cluster
module Protocol = Rebal_online.Protocol
module Journal = Rebal_obs.Journal
module Lineio = Rebal_net.Lineio
module Http = Rebal_net.Http
open QCheck2

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  k = 0 || go 0

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

(* ----- float boundaries through both codecs ----- *)

let boundary_floats =
  [
    max_float;
    min_float (* smallest positive normal *);
    4.9e-324 (* smallest positive subnormal *);
    2.225073858507201e-308 (* largest subnormal *);
    -0.;
    0.;
    1.5;
    -1.7976931348623157e308;
    3.141592653589793;
  ]

let bits = Int64.bits_of_float

let header = { Journal.journal = "test"; version = 1; meta = [] }

let event_with_floats fs =
  {
    Journal.seq = 0;
    ts_ns = 42;
    kind = "f";
    fields = List.mapi (fun i f -> (Printf.sprintf "x%d" i, Journal.Float f)) fs;
    line = 2;
  }

let floats_of_event (e : Journal.event) =
  List.filter_map (function _, Journal.Float f -> Some f | _ -> None) e.Journal.fields

let test_float_round_trip_jsonl () =
  let ev = event_with_floats boundary_floats in
  let text = Journal.render_header header ^ "\n" ^ Journal.render_event ev ^ "\n" in
  match Journal.parse_string text with
  | Error e -> Alcotest.failf "jsonl parse failed: %s" e
  | Ok (_, [ ev' ]) ->
    List.iter2
      (fun f f' ->
        check (Alcotest.int64) (Printf.sprintf "jsonl bits of %h" f) (bits f) (bits f'))
      boundary_floats (floats_of_event ev')
  | Ok _ -> Alcotest.fail "expected exactly one event"

let test_float_round_trip_binary () =
  let ev = event_with_floats boundary_floats in
  let blob =
    Journal.Binary.magic ^ Journal.Binary.encode_header header
    ^ Journal.Binary.encode_event ev
  in
  match Journal.Binary.parse_string blob with
  | Error e -> Alcotest.failf "binary parse failed: %s" e
  | Ok (_, [ ev' ]) ->
    List.iter2
      (fun f f' ->
        check (Alcotest.int64) (Printf.sprintf "binary bits of %h" f) (bits f) (bits f'))
      boundary_floats (floats_of_event ev')
  | Ok _ -> Alcotest.fail "expected exactly one event"

let test_negative_zero_stays_negative () =
  (* -0. is the classic casualty of printf round trips: check the sign
     bit explicitly in both codecs. *)
  let ev = event_with_floats [ -0. ] in
  let via_jsonl =
    match Journal.parse_string (Journal.render_header header ^ "\n" ^ Journal.render_event ev) with
    | Ok (_, [ e ]) -> List.hd (floats_of_event e)
    | _ -> Alcotest.fail "jsonl round trip failed"
  in
  check Alcotest.int64 "jsonl -0. sign bit" (bits (-0.)) (bits via_jsonl)

let test_non_finite_rejected () =
  List.iter
    (fun bad ->
      let raised =
        try
          ignore (Journal.render_json (Journal.Float bad));
          false
        with Journal.Encode_error _ -> true
      in
      check_bool (Printf.sprintf "render rejects %h" bad) true raised;
      let raised_bin =
        try
          ignore (Journal.Binary.encode_event (event_with_floats [ bad ]));
          false
        with Journal.Encode_error _ -> true
      in
      check_bool (Printf.sprintf "binary rejects %h" bad) true raised_bin)
    [ nan; infinity; neg_infinity ]

let test_emit_rejection_burns_no_seq () =
  let buf = Buffer.create 256 in
  let sink =
    Journal.create ~clock_ns:(fun () -> 7L) ~write:(Buffer.add_string buf) ()
  in
  Journal.write_header sink ~journal:"test" [];
  Journal.emit sink ~kind:"ok" [ ("v", Journal.Int 1) ];
  let msg =
    try
      Journal.emit sink ~kind:"bad" [ ("v", Journal.Float nan) ];
      Alcotest.fail "emit accepted nan"
    with Journal.Encode_error m -> m
  in
  (* The error names the would-be line so a producer can log where the
     poison came from. *)
  check_bool "error carries context" true (contains msg "line");
  (* The rejected event consumed no sequence number: the next emit is
     seq 1 and the journal parses as contiguous. *)
  Journal.emit sink ~kind:"ok" [ ("v", Journal.Int 2) ];
  match Journal.parse_string (Buffer.contents buf) with
  | Error e -> Alcotest.failf "journal not contiguous after rejection: %s" e
  | Ok (_, events) ->
    check_int "two events" 2 (List.length events);
    check_int "seq resumes at 1" 1 (List.nth events 1).Journal.seq

(* ----- binary codec: convert equivalence, truncation ----- *)

let sample_journal () =
  let buf = Buffer.create 512 in
  let tick = ref 0 in
  let sink =
    Journal.create
      ~clock_ns:(fun () ->
        incr tick;
        Int64.of_int (!tick * 1000))
      ~write:(Buffer.add_string buf) ()
  in
  Journal.write_header sink ~journal:"sample" [ ("m", Journal.Int 4) ];
  Journal.emit sink ~kind:"add"
    [ ("id", Journal.Str "a"); ("size", Journal.Int 10); ("f", Journal.Float 0.25) ];
  Journal.emit sink ~kind:"weird"
    [
      ("s", Journal.Str "quote\" back\\ slash \t tab \xf0\x9f\x90\xab");
      ("l", Journal.List [ Journal.Null; Journal.Bool true; Journal.Int (-7) ]);
      ("o", Journal.Obj [ ("nested", Journal.Int max_int) ]);
    ];
  Buffer.contents buf

let binary_of (h, events) =
  let b = Buffer.create 512 in
  Buffer.add_string b Journal.Binary.magic;
  Buffer.add_string b (Journal.Binary.encode_header h);
  List.iter (fun e -> Buffer.add_string b (Journal.Binary.encode_event e)) events;
  Buffer.contents b

let test_convert_equivalence () =
  let text = sample_journal () in
  let parsed = match Journal.parse_string text with Ok p -> p | Error e -> Alcotest.fail e in
  let blob = binary_of parsed in
  (match Journal.Binary.parse_string blob with
  | Error e -> Alcotest.failf "binary re-parse: %s" e
  | Ok (h', events') ->
    let h, events = parsed in
    check_string "header journal" h.Journal.journal h'.Journal.journal;
    check_bool "header meta" true (h.Journal.meta = h'.Journal.meta);
    check_int "event count" (List.length events) (List.length events');
    List.iter2
      (fun (a : Journal.event) (b : Journal.event) ->
        check_int "seq" a.seq b.seq;
        check_int "ts" a.ts_ns b.ts_ns;
        check_string "kind" a.kind b.kind;
        check_bool "fields" true (a.fields = b.fields))
      events events');
  (* auto-detect dispatches on the magic *)
  check_bool "load_string detects binary" true (Result.is_ok (Journal.load_string blob));
  check_bool "load_string detects jsonl" true (Result.is_ok (Journal.load_string text))

let test_binary_truncation_rejected () =
  let text = sample_journal () in
  let parsed = match Journal.parse_string text with Ok p -> p | Error e -> Alcotest.fail e in
  let blob = binary_of parsed in
  (* chop mid-frame: every proper prefix that ends inside a frame must
     be rejected, and the error must name a frame ("line"). *)
  let truncated = String.sub blob 0 (String.length blob - 3) in
  (match Journal.Binary.parse_string truncated with
  | Ok _ -> Alcotest.fail "truncated journal accepted"
  | Error e -> check_bool "truncation error names a line" true (contains e "line"));
  (* a frame whose payload opens with an invalid tag byte *)
  let corrupt = blob ^ "\x01\x00\x00\x00\xff" in
  (match Journal.Binary.parse_string corrupt with
  | Ok _ -> Alcotest.fail "corrupted journal accepted"
  | Error _ -> ());
  match Journal.Binary.parse_string "RBXX" with
  | Ok _ -> Alcotest.fail "bad magic accepted"
  | Error _ -> ()

(* ----- apply_bulk == one-by-one (the tentpole property) ----- *)

let op_gen =
  Gen.(
    let id = map (fun i -> Printf.sprintf "j%d" i) (int_range 0 20) in
    oneof
      [
        map2 (fun id size -> Engine.Add { id; size }) id (int_range 1 60);
        map (fun id -> Engine.Remove { id }) id;
        map2 (fun id size -> Engine.Resize { id; size }) id (int_range 1 60);
      ])

let trigger_gen =
  Gen.oneofl
    [
      Engine.Manual;
      Engine.Every_events { events = 5; k = 3 };
      Engine.Imbalance_above { threshold = 1.2; k = 4 };
      Engine.Every_seconds { seconds = 0.5; k = 2 };
    ]

let stream_gen =
  Gen.(
    let* m = int_range 1 8 in
    let* ops = list_size (int_range 0 80) op_gen in
    let* trigger = trigger_gen in
    return (m, ops, trigger))

(* A deterministic engine pair: same fake wall clock (advancing 0.1s a
   tick, so Every_seconds fires identically), same fake journal clock. *)
let engine_with_buffer ~trigger m =
  let buf = Buffer.create 1024 in
  let jtick = ref 0 in
  let wall = ref 0.0 in
  let sink =
    Journal.create
      ~clock_ns:(fun () ->
        incr jtick;
        Int64.of_int (!jtick * 1000))
      ~write:(Buffer.add_string buf) ()
  in
  let eng =
    Engine.create ~trigger
      ~clock:(fun () ->
        wall := !wall +. 0.1;
        !wall)
      ~journal:sink ~m ()
  in
  (eng, buf)

let apply_one eng = function
  | Engine.Add { id; size } -> Engine.add_job eng ~id ~size
  | Engine.Remove { id } -> Engine.remove_job eng ~id
  | Engine.Resize { id; size } -> Engine.resize_job eng ~id ~size

let chunks size arr =
  let n = Array.length arr in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let len = min size (n - i) in
      go (i + len) (Array.sub arr i len :: acc)
  in
  go 0 []

let render_state eng = Journal.render_json (Engine.snapshot eng)

let bulk_equivalence_prop batch_size =
  Test.make ~count:120
    ~name:(Printf.sprintf "apply_bulk(batch=%d) == one-by-one" batch_size)
    ~print:(fun (m, ops, trigger) ->
      Printf.sprintf "m=%d trigger=%s ops=%d" m (Engine.trigger_name trigger)
        (List.length ops))
    stream_gen
    (fun (m, ops, trigger) ->
      let ops = Array.of_list ops in
      let seq_eng, seq_buf = engine_with_buffer ~trigger m in
      let seq_results = Array.map (fun op -> apply_one seq_eng op) ops in
      let bulk_eng, bulk_buf = engine_with_buffer ~trigger m in
      let bulk_results = Array.make (Array.length ops) (Error "never ran") in
      let base = ref 0 in
      List.iter
        (fun chunk ->
          Engine.apply_bulk bulk_eng
            ~on_result:(fun i _op r -> bulk_results.(!base + i) <- r)
            chunk;
          base := !base + Array.length chunk)
        (chunks batch_size ops);
      (* state, stats, per-op results and journal BYTES all bit-match *)
      render_state seq_eng = render_state bulk_eng
      && Engine.stats seq_eng = Engine.stats bulk_eng
      && seq_results = bulk_results
      && Buffer.contents seq_buf = Buffer.contents bulk_buf)

let test_bulk_rejects_mixed_validity_correctly () =
  (* Invalid ops inside a batch change nothing and later ops see the
     state the earlier ones produced. *)
  let eng, _ = engine_with_buffer ~trigger:Engine.Manual 2 in
  let results = ref [] in
  Engine.apply_bulk eng
    ~on_result:(fun _ _ r -> results := r :: !results)
    [|
      Engine.Add { id = "a"; size = 10 };
      Engine.Add { id = "a"; size = 5 } (* duplicate *);
      Engine.Remove { id = "ghost" } (* absent *);
      Engine.Resize { id = "a"; size = 20 };
    |];
  (match List.rev !results with
  | [ Ok _; Error e1; Error e2; Ok _ ] ->
    check_string "duplicate message" "job a already present" e1;
    check_string "absent message" "job ghost not found" e2
  | _ -> Alcotest.fail "unexpected result shapes");
  check_int "only a lives" 1 (Engine.job_count eng);
  check_int "resize landed" 20 (Engine.makespan eng)

(* ----- Cluster.apply_bulk == one-by-one router ----- *)

let test_cluster_bulk_equivalence () =
  let ops =
    Array.init 60 (fun i ->
        let id = Printf.sprintf "j%d" (i mod 17) in
        match i mod 4 with
        | 0 | 1 -> Engine.Add { id; size = 1 + (i mod 9) }
        | 2 -> Engine.Resize { id; size = 1 + (i mod 5) }
        | _ -> Engine.Remove { id })
  in
  let apply_one_cluster c = function
    | Engine.Add { id; size } -> Cluster.add_job c ~id ~size
    | Engine.Remove { id } -> Cluster.remove_job c ~id
    | Engine.Resize { id; size } -> Cluster.resize_job c ~id ~size
  in
  let run_seq () =
    let c = Cluster.create ~m:8 ~shards:2 () in
    Fun.protect ~finally:(fun () -> Cluster.shutdown c) @@ fun () ->
    let rs = Array.map (fun op -> apply_one_cluster c op) ops in
    (rs, Cluster.loads c, Cluster.makespan c, Cluster.job_count c)
  in
  let run_bulk () =
    let c = Cluster.create ~m:8 ~shards:2 () in
    Fun.protect ~finally:(fun () -> Cluster.shutdown c) @@ fun () ->
    let rs = Array.make (Array.length ops) (Error "never ran") in
    Cluster.apply_bulk c ~on_result:(fun i _ r -> rs.(i) <- r) ops;
    (rs, Cluster.loads c, Cluster.makespan c, Cluster.job_count c)
  in
  let rs_a, loads_a, mk_a, jc_a = run_seq () in
  let rs_b, loads_b, mk_b, jc_b = run_bulk () in
  check_bool "results match" true (rs_a = rs_b);
  check_bool "loads match" true (loads_a = loads_b);
  check_int "makespan" mk_a mk_b;
  check_int "job count" jc_a jc_b

(* ----- Protocol.handle_lines ----- *)

let script =
  [
    "ADD a 10";
    "ADD b 20";
    "RESIZE a 15";
    "# a comment mid-batch";
    "REMOVE b";
    "ADD c 0" (* parse error *);
    "ADD d 7";
    "STATS";
    "ADD e 3";
  ]

let test_handle_lines_matches_one_by_one () =
  let eng1 = Engine.create ~m:4 () in
  let expect =
    List.concat
      (List.mapi
         (fun i l -> fst (Protocol.handle_line ~line:(i + 1) (Protocol.Single eng1) l))
         script)
  in
  let eng2 = Engine.create ~m:4 () in
  let got, verdict = Protocol.handle_lines (Protocol.Single eng2) script in
  check_bool "pipelined replies identical" true (expect = got);
  check_bool "still open" true (verdict = Protocol.Continue);
  check_string "same final state" (render_state eng1) (render_state eng2)

let test_handle_lines_quit_drops_remainder () =
  let eng = Engine.create ~m:4 () in
  let got, verdict =
    Protocol.handle_lines (Protocol.Single eng) [ "ADD a 1"; "QUIT"; "ADD b 2" ]
  in
  check_bool "closes" true (verdict = Protocol.Close);
  check_bool "BYE last" true (List.exists (fun l -> l = "BYE") got);
  check_int "b never placed" 1 (Engine.job_count eng)

let test_handle_lines_start_line_numbers_errors () =
  let eng = Engine.create ~m:4 () in
  let got, _ =
    Protocol.handle_lines ~start_line:41 (Protocol.Single eng) [ "ADD a 1"; "BOGUS" ]
  in
  check_bool "error carries absolute line" true
    (List.exists
       (fun l ->
         String.length l >= 11 && String.sub l 0 11 = "ERR line 42")
       got)

(* ----- Lineio: EAGAIN, signals, has_line ----- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_lineio_nonblocking_read () =
  with_socketpair @@ fun a b ->
  Unix.set_nonblock a;
  let r = Lineio.reader a in
  let got = ref None in
  let t = Thread.create (fun () -> got := Lineio.read_line r) () in
  Thread.delay 0.02 (* let the reader hit EAGAIN and park in select *);
  ignore (Unix.write_substring b "hello\nrest" 0 10);
  Thread.join t;
  check_bool "line through EAGAIN" true (!got = Some "hello");
  (* the trailing partial line is buffered but not a line yet *)
  check_bool "no complete line buffered" false (Lineio.has_line r);
  ignore (Unix.write_substring b "!\n" 0 2);
  check_bool "second line arrives" true (Lineio.read_line r = Some "rest!")

let test_lineio_has_line_batching_probe () =
  with_socketpair @@ fun a b ->
  ignore (Unix.write_substring b "one\ntwo\nthr" 0 11);
  let r = Lineio.reader a in
  check_bool "first line" true (Lineio.read_line r = Some "one");
  check_bool "second already buffered" true (Lineio.has_line r);
  check_bool "second line" true (Lineio.read_line r = Some "two");
  (* "thr" is buffered but unterminated: has_line must be false, or the
     session would block mid-batch. *)
  check_bool "partial is not a line" false (Lineio.has_line r);
  ignore (Unix.write_substring b "ee\n" 0 3);
  check_bool "completed line" true (Lineio.read_line r = Some "three");
  Unix.close b;
  (* EOF with empty buffer *)
  check_bool "eof" true (Lineio.read_line r = None)

let test_lineio_write_survives_backpressure () =
  (* A payload far larger than the socket buffer, written through a
     nonblocking fd: Lineio must resume short writes and wait out
     EAGAIN until every byte lands. *)
  with_socketpair @@ fun a b ->
  Unix.set_nonblock a;
  let n = 1 lsl 20 in
  let payload = String.init n (fun i -> Char.chr (32 + (i mod 90))) in
  let writer = Thread.create (fun () -> Lineio.write_string a payload) () in
  let buf = Bytes.create 65536 in
  let received = ref 0 in
  while !received < n do
    let k = Unix.read b buf 0 (Bytes.length buf) in
    if k = 0 then Alcotest.fail "peer closed early";
    received := !received + k
  done;
  Thread.join writer;
  check_int "every byte delivered" n !received

let test_lineio_survives_signals () =
  (* SIGUSR1 rains on the process while a session reads and writes.
     Before the EINTR audit this tore sessions down mid-drain; now the
     line must arrive intact. The handler is a no-op installed with
     [Signal_handle], which is what makes syscalls return EINTR at
     all. *)
  let previous = Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ())) in
  Fun.protect ~finally:(fun () -> ignore (Sys.signal Sys.sigusr1 previous))
  @@ fun () ->
  with_socketpair @@ fun a b ->
  let r = Lineio.reader a in
  let got = ref None in
  let reader = Thread.create (fun () -> got := Lineio.read_line r) () in
  let pid = Unix.getpid () in
  for _ = 1 to 20 do
    Unix.kill pid Sys.sigusr1;
    Thread.delay 0.002
  done;
  ignore (Unix.write_substring b "survived\n" 0 9);
  for _ = 1 to 5 do
    Unix.kill pid Sys.sigusr1;
    Thread.delay 0.002
  done;
  Thread.join reader;
  check_bool "read survived the signal storm" true (!got = Some "survived")

let test_lineio_connect_refused_reports () =
  (* connect to a port nobody listens on: the EINTR-safe wrapper must
     still surface the real error, not swallow it. *)
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, 1) in
  match Lineio.connect sock addr with
  | () -> Alcotest.fail "connect to port 1 succeeded?"
  | exception Unix.Unix_error _ -> ()

(* ----- HTTP sniffer: delayed first byte ----- *)

let test_sniff_delayed_prefix_falls_back () =
  (* The regression: a client that writes "HE" (prefix of "HEAD ") and
     stalls used to classify as HTTP and get a 400. It must sniff as
     NOT-HTTP (fall back to the protocol banner) once the full "HELP"
     resolves — and the peeked bytes must still be readable. *)
  with_socketpair @@ fun a b ->
  let writer =
    Thread.create
      (fun () ->
        ignore (Unix.write_substring b "HE" 0 2);
        Thread.delay 0.03;
        ignore (Unix.write_substring b "LP\n" 0 3))
      ()
  in
  let verdict = Http.sniff ~timeout:0.5 a in
  Thread.join writer;
  check_bool "HELP is not HTTP" false verdict;
  let buf = Bytes.create 5 in
  let n = Unix.read a buf 0 5 in
  check_string "bytes not consumed" "HELP\n" (Bytes.sub_string buf 0 n)

let test_sniff_delayed_http_still_classifies () =
  with_socketpair @@ fun a b ->
  let writer =
    Thread.create
      (fun () ->
        ignore (Unix.write_substring b "G" 0 1);
        Thread.delay 0.03;
        ignore (Unix.write_substring b "ET /metrics HTTP/1.0\r\n" 0 22))
      ()
  in
  let verdict = Http.sniff ~timeout:0.5 a in
  Thread.join writer;
  check_bool "slow GET is HTTP" true verdict

let test_sniff_timeout_is_protocol () =
  (* An inconclusive prefix that never resolves: the deadline expires
     and the answer is protocol, not an HTTP error. *)
  with_socketpair @@ fun a b ->
  ignore (Unix.write_substring b "G" 0 1);
  check_bool "unresolved prefix times out to protocol" false (Http.sniff ~timeout:0.08 a);
  (* And a silent client (a protocol client awaiting the banner). *)
  with_socketpair @@ fun c _d -> check_bool "silence is protocol" false (Http.sniff ~timeout:0.05 c)

(* ----- suite ----- *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "bulk"
    [
      ( "float-boundaries",
        [
          Alcotest.test_case "jsonl round trip" `Quick test_float_round_trip_jsonl;
          Alcotest.test_case "binary round trip" `Quick test_float_round_trip_binary;
          Alcotest.test_case "-0. keeps its sign" `Quick test_negative_zero_stays_negative;
          Alcotest.test_case "non-finite rejected" `Quick test_non_finite_rejected;
          Alcotest.test_case "rejection burns no seq" `Quick test_emit_rejection_burns_no_seq;
        ] );
      ( "binary-codec",
        [
          Alcotest.test_case "convert equivalence" `Quick test_convert_equivalence;
          Alcotest.test_case "truncation rejected" `Quick test_binary_truncation_rejected;
        ] );
      ( "apply-bulk",
        qsuite
          [
            bulk_equivalence_prop 1;
            bulk_equivalence_prop 7;
            bulk_equivalence_prop 1024;
          ]
        @ [
            Alcotest.test_case "mixed validity" `Quick
              test_bulk_rejects_mixed_validity_correctly;
            Alcotest.test_case "cluster bulk equivalence" `Quick
              test_cluster_bulk_equivalence;
          ] );
      ( "handle-lines",
        [
          Alcotest.test_case "pipelined == one-by-one" `Quick
            test_handle_lines_matches_one_by_one;
          Alcotest.test_case "quit drops remainder" `Quick
            test_handle_lines_quit_drops_remainder;
          Alcotest.test_case "absolute line numbers" `Quick
            test_handle_lines_start_line_numbers_errors;
        ] );
      ( "lineio",
        [
          Alcotest.test_case "nonblocking read" `Quick test_lineio_nonblocking_read;
          Alcotest.test_case "has_line probe" `Quick test_lineio_has_line_batching_probe;
          Alcotest.test_case "write backpressure" `Quick
            test_lineio_write_survives_backpressure;
          Alcotest.test_case "signal storm" `Quick test_lineio_survives_signals;
          Alcotest.test_case "connect error surfaces" `Quick
            test_lineio_connect_refused_reports;
        ] );
      ( "http-sniff",
        [
          Alcotest.test_case "delayed prefix falls back" `Quick
            test_sniff_delayed_prefix_falls_back;
          Alcotest.test_case "delayed HTTP classifies" `Quick
            test_sniff_delayed_http_still_classifies;
          Alcotest.test_case "timeout is protocol" `Quick test_sniff_timeout_is_protocol;
        ] );
    ]
